#include "eval/experiments.hpp"

#include <chrono>
#include <memory>

#include "bnn/batch_runner.hpp"
#include "bnn/dataset.hpp"
#include "bnn/trainer.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace eb::eval {

namespace {

template <typename F>
std::vector<double> collect(const std::vector<Fig7Row>& rows, F f) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    out.push_back(f(r));
  }
  return out;
}

template <typename F>
std::vector<double> collect8(const std::vector<Fig8Row>& rows, F f) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    out.push_back(f(r));
  }
  return out;
}

}  // namespace

std::vector<double> Fig7Result::tacit_speedups() const {
  return collect(rows, [](const Fig7Row& r) { return r.tacit_speedup(); });
}

std::vector<double> Fig7Result::einstein_speedups() const {
  return collect(rows, [](const Fig7Row& r) { return r.einstein_speedup(); });
}

std::vector<double> Fig7Result::gpu_speedups() const {
  return collect(rows, [](const Fig7Row& r) { return r.gpu_speedup(); });
}

std::vector<double> Fig7Result::einstein_over_tacit() const {
  return collect(rows,
                 [](const Fig7Row& r) { return r.einstein_over_tacit(); });
}

std::vector<double> Fig8Result::tacit_normalized() const {
  return collect8(rows, [](const Fig8Row& r) { return r.tacit_normalized(); });
}

std::vector<double> Fig8Result::einstein_normalized() const {
  return collect8(rows,
                  [](const Fig8Row& r) { return r.einstein_normalized(); });
}

std::vector<double> Fig8Result::tacit_over_einstein() const {
  return collect8(rows,
                  [](const Fig8Row& r) { return r.tacit_over_einstein(); });
}

Fig7Result run_fig7(const arch::TechParams& params,
                    const std::vector<bnn::NetworkSpec>& nets) {
  const arch::CostModel model(params);
  Fig7Result result;
  for (const auto& net : nets) {
    Fig7Row row;
    row.network = net.name;
    row.baseline_ns =
        model.evaluate(arch::Design::BaselineEpcm, net).latency_ns;
    row.tacit_ns = model.evaluate(arch::Design::TacitEpcm, net).latency_ns;
    row.einstein_ns =
        model.evaluate(arch::Design::EinsteinBarrier, net).latency_ns;
    row.gpu_ns = model.evaluate(arch::Design::BaselineGpu, net).latency_ns;
    result.rows.push_back(row);
  }
  return result;
}

Fig8Result run_fig8(const arch::TechParams& params,
                    const std::vector<bnn::NetworkSpec>& nets) {
  const arch::CostModel model(params);
  Fig8Result result;
  for (const auto& net : nets) {
    Fig8Row row;
    row.network = net.name;
    row.baseline_pj =
        model.evaluate(arch::Design::BaselineEpcm, net).energy_pj;
    row.tacit_pj = model.evaluate(arch::Design::TacitEpcm, net).energy_pj;
    row.einstein_pj =
        model.evaluate(arch::Design::EinsteinBarrier, net).energy_pj;
    result.rows.push_back(row);
  }
  return result;
}

Table fig7_table(const Fig7Result& r) {
  Table t({"network", "Baseline-ePCM (us)", "TacitMap-ePCM (us)",
           "EinsteinBarrier (us)", "Baseline-GPU (us)", "TacitMap speedup",
           "EinsteinBarrier speedup", "GPU speedup", "EB / TacitMap"});
  for (const auto& row : r.rows) {
    t.add_row({row.network, Table::num(ns_to_us(row.baseline_ns), 2),
               Table::num(ns_to_us(row.tacit_ns), 3),
               Table::num(ns_to_us(row.einstein_ns), 3),
               Table::num(ns_to_us(row.gpu_ns), 2),
               Table::num(row.tacit_speedup(), 1),
               Table::num(row.einstein_speedup(), 1),
               Table::num(row.gpu_speedup(), 2),
               Table::num(row.einstein_over_tacit(), 1)});
  }
  return t;
}

Table fig8_table(const Fig8Result& r) {
  Table t({"network", "Baseline-ePCM (nJ)", "TacitMap-ePCM (nJ)",
           "EinsteinBarrier (nJ)", "TacitMap normalized",
           "EinsteinBarrier normalized", "TacitMap / EB"});
  for (const auto& row : r.rows) {
    t.add_row({row.network, Table::num(pj_to_nj(row.baseline_pj), 1),
               Table::num(pj_to_nj(row.tacit_pj), 1),
               Table::num(pj_to_nj(row.einstein_pj), 1),
               Table::num(row.tacit_normalized(), 2),
               Table::num(row.einstein_normalized(), 2),
               Table::num(row.tacit_over_einstein(), 2)});
  }
  return t;
}

Table layer_breakdown_table(const arch::CostModel& model, arch::Design design,
                            const bnn::NetworkSpec& net) {
  Table t({"layer", "latency (us)", "energy (nJ)", "passes", "batches",
           "replicas"});
  const auto cost = model.evaluate(design, net);
  for (const auto& l : cost.layers) {
    t.add_row({l.layer, Table::num(ns_to_us(l.latency_ns), 3),
               Table::num(pj_to_nj(l.energy_pj), 2),
               std::to_string(l.crossbar_passes),
               std::to_string(l.window_batches),
               std::to_string(l.replicas)});
  }
  t.add_row({"TOTAL", Table::num(ns_to_us(cost.latency_ns), 3),
             Table::num(pj_to_nj(cost.energy_pj), 2), "-", "-", "-"});
  return t;
}

AccuracySweepResult run_accuracy_sweep(const AccuracySweepConfig& cfg) {
  EB_REQUIRE(cfg.eval_samples >= 1, "accuracy sweep needs eval samples");
  bnn::TrainerConfig tcfg;
  tcfg.dims = cfg.dims;
  tcfg.epochs = cfg.epochs;
  tcfg.train_samples = cfg.train_samples;
  bnn::MlpTrainer trainer(tcfg);
  const bnn::SyntheticMnist data(cfg.seed);
  trainer.train(data);
  const bnn::Network net = trainer.export_network("accuracy-sweep");

  const auto samples = data.batch(cfg.eval_start, cfg.eval_samples);
  AccuracySweepResult r;
  r.samples = samples.size();

  // Scalar per-sample reference path.
  std::vector<std::size_t> scalar_preds(samples.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t scalar_correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    scalar_preds[i] = net.predict(samples[i].image);
    if (scalar_preds[i] == samples[i].label) {
      ++scalar_correct;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.scalar_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  r.scalar_accuracy =
      static_cast<double>(scalar_correct) / static_cast<double>(r.samples);

  // Packed batched engine.
  bnn::BatchRunnerConfig bcfg;
  bcfg.batch_size = cfg.batch_size;
  bcfg.threads = cfg.threads;
  const bnn::BatchRunner runner(net, bcfg);
  std::vector<bnn::Tensor> inputs;
  inputs.reserve(samples.size());
  for (const auto& s : samples) {
    inputs.push_back(s.image);
  }
  const auto t2 = std::chrono::steady_clock::now();
  const auto batched_preds = runner.predict_all(inputs);
  const auto t3 = std::chrono::steady_clock::now();
  r.batched_ns = std::chrono::duration<double, std::nano>(t3 - t2).count();

  std::size_t batched_correct = 0;
  r.predictions_identical = true;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (batched_preds[i] == samples[i].label) {
      ++batched_correct;
    }
    if (batched_preds[i] != scalar_preds[i]) {
      r.predictions_identical = false;
    }
  }
  r.batched_accuracy =
      static_cast<double>(batched_correct) / static_cast<double>(r.samples);
  return r;
}

NoiseMcResult run_noise_monte_carlo(
    const std::function<double(std::size_t, RngStream&)>& metric,
    const NoiseMcConfig& cfg) {
  EB_REQUIRE(cfg.repetitions >= 1, "noise MC needs at least one repetition");
  EB_REQUIRE(metric != nullptr, "noise MC needs a metric");
  NoiseMcResult r;
  r.per_rep.assign(cfg.repetitions, 0.0);

  // Every repetition forks its stream from the same root snapshot, so the
  // draw sequence of rep k is a pure function of (seed, k) -- independent
  // of scheduling.
  const RngStream root(cfg.seed);
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = cfg.pool;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(cfg.threads);
    pool = owned.get();
  }
  const auto t0 = std::chrono::steady_clock::now();
  pool->parallel_for(0, cfg.repetitions, 1,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t rep = begin; rep < end; ++rep) {
                        RngStream rng = root.fork(
                            static_cast<std::uint64_t>(
                                StreamTag::NoiseMonteCarlo),
                            rep, 0);
                        r.per_rep[rep] = metric(rep, rng);
                      }
                    });
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();

  // Deterministic reduction: repetition order, on the calling thread.
  for (const double v : r.per_rep) {
    r.stats.add(v);
  }
  return r;
}

Table accuracy_sweep_table(const AccuracySweepResult& r) {
  Table t({"engine", "accuracy", "wall (ms)", "samples/s"});
  const double scalar_s = r.scalar_ns * 1e-9;
  const double batched_s = r.batched_ns * 1e-9;
  t.add_row({"scalar per-sample", Table::num(r.scalar_accuracy, 4),
             Table::num(ns_to_ms(r.scalar_ns), 2),
             Table::num(scalar_s > 0.0 ? r.samples / scalar_s : 0.0, 0)});
  t.add_row({"packed batched", Table::num(r.batched_accuracy, 4),
             Table::num(ns_to_ms(r.batched_ns), 2),
             Table::num(batched_s > 0.0 ? r.samples / batched_s : 0.0, 0)});
  return t;
}

}  // namespace eb::eval
