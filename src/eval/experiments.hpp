// Experiment drivers regenerating the paper's evaluation (section VI).
//
// Fig. 7: latency improvement of TacitMap-ePCM / EinsteinBarrier /
//         Baseline-GPU over Baseline-ePCM, per network + averages.
// Fig. 8: energy consumption of TacitMap-ePCM / EinsteinBarrier
//         normalized to Baseline-ePCM, per network + averages.
//
// The drivers return structured results (benches render them as tables,
// tests assert on the bands).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/cost_model.hpp"
#include "arch/tech_params.hpp"
#include "bnn/spec.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace eb::eval {

struct Fig7Row {
  std::string network;
  double baseline_ns = 0.0;
  double tacit_ns = 0.0;
  double einstein_ns = 0.0;
  double gpu_ns = 0.0;

  [[nodiscard]] double tacit_speedup() const { return baseline_ns / tacit_ns; }
  [[nodiscard]] double einstein_speedup() const {
    return baseline_ns / einstein_ns;
  }
  [[nodiscard]] double gpu_speedup() const { return baseline_ns / gpu_ns; }
  [[nodiscard]] double einstein_over_tacit() const {
    return tacit_ns / einstein_ns;
  }
};

struct Fig7Result {
  std::vector<Fig7Row> rows;

  [[nodiscard]] std::vector<double> tacit_speedups() const;
  [[nodiscard]] std::vector<double> einstein_speedups() const;
  [[nodiscard]] std::vector<double> gpu_speedups() const;
  [[nodiscard]] std::vector<double> einstein_over_tacit() const;
};

struct Fig8Row {
  std::string network;
  double baseline_pj = 0.0;
  double tacit_pj = 0.0;
  double einstein_pj = 0.0;

  // Normalized energy (paper Fig. 8 convention: > 1 means more energy
  // than Baseline-ePCM).
  [[nodiscard]] double tacit_normalized() const {
    return tacit_pj / baseline_pj;
  }
  [[nodiscard]] double einstein_normalized() const {
    return einstein_pj / baseline_pj;
  }
  [[nodiscard]] double tacit_over_einstein() const {
    return tacit_pj / einstein_pj;
  }
};

struct Fig8Result {
  std::vector<Fig8Row> rows;

  [[nodiscard]] std::vector<double> tacit_normalized() const;
  [[nodiscard]] std::vector<double> einstein_normalized() const;
  [[nodiscard]] std::vector<double> tacit_over_einstein() const;
};

[[nodiscard]] Fig7Result run_fig7(const arch::TechParams& params,
                                  const std::vector<bnn::NetworkSpec>& nets);

[[nodiscard]] Fig8Result run_fig8(const arch::TechParams& params,
                                  const std::vector<bnn::NetworkSpec>& nets);

// Rendering helpers shared by benches.
[[nodiscard]] Table fig7_table(const Fig7Result& r);
[[nodiscard]] Table fig8_table(const Fig8Result& r);

// Per-layer breakdown of one network under one design (debug/ablation).
[[nodiscard]] Table layer_breakdown_table(const arch::CostModel& model,
                                          arch::Design design,
                                          const bnn::NetworkSpec& net);

// ---- Accuracy sweep (functional path) ----------------------------------
//
// Paper section V-C: the mappings accelerate, they do not change the
// arithmetic -- so reference accuracy is the quantity every engine must
// reproduce. This driver trains a binarized MLP on the synthetic MNIST
// stand-in and evaluates the held-out split twice: through the per-sample
// scalar path (Network::forward) and through the packed batched engine
// (bnn::BatchRunner). The two must agree prediction-by-prediction; the
// timing columns quantify what the batched engine buys.

struct AccuracySweepConfig {
  std::vector<std::size_t> dims{784, 96, 64, 10};
  std::size_t epochs = 2;
  std::size_t train_samples = 400;
  std::size_t eval_start = 10000;
  std::size_t eval_samples = 256;
  std::size_t batch_size = 64;
  std::size_t threads = 1;  // 0 = hardware concurrency
  std::uint64_t seed = 42;
};

struct AccuracySweepResult {
  std::size_t samples = 0;
  double scalar_accuracy = 0.0;
  double batched_accuracy = 0.0;
  double scalar_ns = 0.0;
  double batched_ns = 0.0;
  bool predictions_identical = false;

  [[nodiscard]] double speedup() const {
    return batched_ns > 0.0 ? scalar_ns / batched_ns : 0.0;
  }
};

[[nodiscard]] AccuracySweepResult run_accuracy_sweep(
    const AccuracySweepConfig& cfg);

[[nodiscard]] Table accuracy_sweep_table(const AccuracySweepResult& r);

// ---- Noise Monte-Carlo fan-out ------------------------------------------
//
// The robustness ablations re-run the same mapped network over many noise
// realizations. Repetitions are statistically independent, so they fan
// out across the thread pool: repetition `rep` draws every noise sample
// from RngStream(seed).fork(NoiseMonteCarlo tag, rep, 0), and the per-rep
// metrics are folded into the StatAccumulator in repetition order on the
// calling thread. Aggregates are therefore bit-identical for any thread
// count (including threads == 1), which the determinism suite asserts.

struct NoiseMcConfig {
  std::size_t repetitions = 8;
  // Pool for the repetition fan-out. When nullptr a pool of `threads`
  // (0 = default_thread_count()) is created for the call; callers running
  // many MC sweeps should pass one long-lived pool instead.
  ThreadPool* pool = nullptr;
  std::size_t threads = 0;
  std::uint64_t seed = 0xEB0A11ULL;
};

struct NoiseMcResult {
  std::vector<double> per_rep;  // metric value per repetition, in order
  StatAccumulator stats;        // accumulated over per_rep, in order
  double wall_ns = 0.0;
};

// `metric(rep, rng)` evaluates one Monte-Carlo repetition with its private
// stream and returns the scalar being aggregated (accuracy, error rate,
// ...). It runs concurrently on pool threads and must only share
// read-only state. Use the provided `rng` (or streams forked from it) for
// every stochastic draw; mapped executors should be called with
// pool = nullptr -- the repetition is already the parallel dimension.
[[nodiscard]] NoiseMcResult run_noise_monte_carlo(
    const std::function<double(std::size_t rep, RngStream& rng)>& metric,
    const NoiseMcConfig& cfg);

}  // namespace eb::eval
