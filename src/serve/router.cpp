#include "serve/router.hpp"

#include "common/error.hpp"

namespace eb::serve {

const char* to_string(DeadlineClass c) {
  switch (c) {
    case DeadlineClass::kInteractive:
      return "interactive";
    case DeadlineClass::kBatch:
      return "batch";
    case DeadlineClass::kBestEffort:
      return "besteffort";
  }
  EB_UNREACHABLE("unknown serve::DeadlineClass");
}

DeadlineClass parse_deadline_class(const std::string& name) {
  if (name == "interactive") {
    return DeadlineClass::kInteractive;
  }
  if (name == "batch") {
    return DeadlineClass::kBatch;
  }
  if (name == "besteffort") {
    return DeadlineClass::kBestEffort;
  }
  EB_REQUIRE(false, "unknown deadline class '" + name +
                        "' (expected interactive|batch|besteffort)");
  return DeadlineClass::kBestEffort;  // unreachable
}

std::array<ClassConfig, kNumClasses> default_class_configs() {
  std::array<ClassConfig, kNumClasses> cfgs;
  cfgs[static_cast<std::size_t>(DeadlineClass::kInteractive)] = {
      /*weight=*/4.0, /*default_deadline_us=*/100'000,
      /*queue_capacity=*/4096};
  cfgs[static_cast<std::size_t>(DeadlineClass::kBatch)] = {
      /*weight=*/2.0, /*default_deadline_us=*/1'000'000,
      /*queue_capacity=*/8192};
  cfgs[static_cast<std::size_t>(DeadlineClass::kBestEffort)] = {
      /*weight=*/1.0, /*default_deadline_us=*/0, /*queue_capacity=*/8192};
  return cfgs;
}

}  // namespace eb::serve
