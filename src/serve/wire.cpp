#include "serve/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace eb::serve::wire {

namespace {

// ---- little-endian append helpers -----------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// ---- bounds-checked reader ------------------------------------------------

// Sequential reader over one frame body. Every get_* checks the remaining
// byte count; `ok` latches false on the first underrun, and the getters
// return zeros from then on, so decode code can read linearly and check
// `ok` at the checkpoints.
struct Reader {
  const std::uint8_t* p;
  std::size_t remaining;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t get_u8() {
    if (!take(1)) {
      return 0;
    }
    const std::uint8_t v = p[0];
    p += 1;
    remaining -= 1;
    return v;
  }
  std::uint16_t get_u16() {
    if (!take(2)) {
      return 0;
    }
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p[i])
                                          << (8 * i)));
    }
    p += 2;
    remaining -= 2;
    return v;
  }
  std::uint32_t get_u32() {
    if (!take(4)) {
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    p += 4;
    remaining -= 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!take(8)) {
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    remaining -= 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_bytes(std::size_t n) {
    if (!take(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    remaining -= n;
    return s;
  }
};

void put_tensor(std::vector<std::uint8_t>& out, const bnn::Tensor& t) {
  EB_REQUIRE(t.rank() <= kMaxDims, "tensor rank exceeds wire limit");
  put_u8(out, static_cast<std::uint8_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) {
    EB_REQUIRE(t.dim(d) <= UINT32_MAX, "tensor dim exceeds wire limit");
    put_u32(out, static_cast<std::uint32_t>(t.dim(d)));
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    put_f64(out, t[i]);
  }
}

// Reads ndims + dims + payload. Returns false on rank/dims abuse or when
// the remaining body cannot hold the declared payload.
bool get_tensor(Reader& r, bnn::Tensor& t) {
  const std::uint8_t ndims = r.get_u8();
  if (!r.ok || ndims > kMaxDims) {
    return false;
  }
  std::vector<std::size_t> shape;
  shape.reserve(ndims);
  std::size_t elems = ndims == 0 ? 0 : 1;
  for (std::uint8_t d = 0; d < ndims; ++d) {
    const std::uint32_t dim = r.get_u32();
    if (!r.ok || dim == 0) {
      return false;
    }
    // Overflow-safe element count: the payload must fit in the remaining
    // body anyway, which kMaxFrameBytes bounds, so cap eagerly.
    if (elems > kMaxFrameBytes / 8 / dim) {
      return false;
    }
    elems *= dim;
    shape.push_back(dim);
  }
  if (!r.ok || r.remaining != elems * 8) {
    return false;  // payload must use exactly the rest of the body
  }
  if (ndims == 0) {
    t = bnn::Tensor();
    return true;
  }
  bnn::Tensor out(shape);
  for (std::size_t i = 0; i < elems; ++i) {
    out[i] = r.get_f64();
  }
  t = std::move(out);
  return r.ok;
}

// Parses the length prefix + common body header (magic, version, type).
// On success leaves `r` positioned after the type byte and sets
// `frame_size` to the whole frame's size.
DecodeStatus open_frame(const std::uint8_t* data, std::size_t size,
                        std::uint8_t want_type, Reader& r,
                        std::size_t& frame_size) {
  if (size < 4) {
    return DecodeStatus::kNeedMoreData;
  }
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  if (body_len > kMaxFrameBytes) {
    return DecodeStatus::kTooLarge;
  }
  if (size < 4 + static_cast<std::size_t>(body_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  frame_size = 4 + static_cast<std::size_t>(body_len);
  r = Reader{data + 4, body_len};
  const std::uint32_t magic = r.get_u32();
  if (!r.ok || magic != kMagic) {
    return DecodeStatus::kBadMagic;
  }
  const std::uint8_t version = r.get_u8();
  if (!r.ok || version != kVersion) {
    return DecodeStatus::kBadVersion;
  }
  const std::uint8_t type = r.get_u8();
  if (!r.ok || type != want_type) {
    return DecodeStatus::kBadType;
  }
  return DecodeStatus::kOk;
}

// Writes the u32 length prefix into out[0..3] from the body that follows.
void seal_frame(std::vector<std::uint8_t>& out) {
  const std::uint32_t body_len = static_cast<std::uint32_t>(out.size() - 4);
  EB_REQUIRE(body_len <= kMaxFrameBytes, "frame exceeds size cap");
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
}

// Parses one response *body* (the type-2 layout after the length prefix)
// with its own Reader; used by both decode_response and the batch
// decoder. Returns false on any inconsistency.
bool read_response_body(Reader& r, ResponseFrame& out) {
  const std::uint32_t magic = r.get_u32();
  const std::uint8_t version = r.get_u8();
  const std::uint8_t type = r.get_u8();
  if (!r.ok || magic != kMagic || version != kVersion ||
      type != kTypeResponse) {
    return false;
  }
  const std::uint8_t status = r.get_u8();
  (void)r.get_u8();  // reserved
  out.request_id = r.get_u64();
  out.queue_us = r.get_f64();
  out.total_us = r.get_f64();
  if (!r.ok ||
      status > static_cast<std::uint8_t>(Status::kInvalidArgument) ||
      !get_tensor(r, out.tensor)) {
    return false;
  }
  out.status = static_cast<Status>(status);
  return true;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMoreData:
      return "need_more_data";
    case DecodeStatus::kBadMagic:
      return "bad_magic";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kBadType:
      return "bad_type";
    case DecodeStatus::kTooLarge:
      return "too_large";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  EB_UNREACHABLE("unknown wire::DecodeStatus");
}

std::vector<std::uint8_t> encode_request(const RequestFrame& req) {
  EB_REQUIRE(!req.model_id.empty() && req.model_id.size() <= UINT16_MAX,
             "model id must be 1..65535 bytes");
  EB_REQUIRE(static_cast<std::size_t>(req.cls) < kNumClasses,
             "invalid deadline class");
  std::vector<std::uint8_t> out;
  out.reserve(64 + req.model_id.size() + 8 * req.tensor.size());
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeRequest);
  put_u8(out, static_cast<std::uint8_t>(req.cls));
  put_u8(out, req.flags);
  put_u64(out, req.request_id);
  put_u64(out, req.deadline_us);
  put_u16(out, static_cast<std::uint16_t>(req.model_id.size()));
  out.insert(out.end(), req.model_id.begin(), req.model_id.end());
  put_tensor(out, req.tensor);
  seal_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_response_body(const ResponseFrame& resp) {
  std::vector<std::uint8_t> out;
  out.reserve(60 + 8 * resp.tensor.size());
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeResponse);
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  put_u8(out, 0);  // reserved
  put_u64(out, resp.request_id);
  put_f64(out, resp.queue_us);
  put_f64(out, resp.total_us);
  if (resp.status == Status::kOk) {
    put_tensor(out, resp.tensor);
  } else {
    put_u8(out, 0);  // ndims = 0: no payload on non-ok responses
  }
  EB_REQUIRE(out.size() <= kMaxFrameBytes, "response frame exceeds size cap");
  return out;
}

std::vector<std::uint8_t> frame_body(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + body.size());
  put_u32(out, 0);  // length placeholder
  out.insert(out.end(), body.begin(), body.end());
  seal_frame(out);
  return out;
}

std::vector<std::uint8_t> encode_response(const ResponseFrame& resp) {
  return frame_body(encode_response_body(resp));
}

std::vector<std::uint8_t> encode_response_batch(
    const std::vector<std::vector<std::uint8_t>>& bodies) {
  EB_REQUIRE(!bodies.empty() && bodies.size() <= UINT16_MAX,
             "batch must hold 1..65535 responses");
  std::size_t total = 12;  // prefix + magic/ver/type/rsvd + count
  for (const auto& b : bodies) {
    total += 4 + b.size();
  }
  EB_REQUIRE(total - 4 <= kMaxFrameBytes, "batched frame exceeds size cap");
  std::vector<std::uint8_t> out;
  out.reserve(total);
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeResponseBatch);
  put_u8(out, 0);  // reserved
  put_u16(out, static_cast<std::uint16_t>(bodies.size()));
  for (const auto& b : bodies) {
    EB_REQUIRE(b.size() <= UINT32_MAX, "batch entry exceeds u32 length");
    put_u32(out, static_cast<std::uint32_t>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
  }
  seal_frame(out);
  return out;
}

std::vector<std::vector<std::uint8_t>> encode_response_chunks(
    const ResponseFrame& resp, std::size_t chunk_bytes) {
  // Whole f64s per chunk, at least one element.
  const std::size_t per_chunk = std::max<std::size_t>(chunk_bytes / 8, 1) * 8;
  std::vector<std::uint8_t> slab;
  if (resp.status == Status::kOk) {
    slab.reserve(8 * resp.tensor.size());
    for (std::size_t i = 0; i < resp.tensor.size(); ++i) {
      put_f64(slab, resp.tensor[i]);
    }
  }
  EB_REQUIRE(slab.size() <= kMaxStreamBytes,
             "streamed response exceeds kMaxStreamBytes");
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t off = 0;
  std::uint32_t seq = 0;
  do {
    const std::size_t n = std::min(per_chunk, slab.size() - off);
    const bool last = off + n == slab.size();
    std::vector<std::uint8_t> out;
    out.reserve(64 + n);
    put_u32(out, 0);  // length placeholder
    put_u32(out, kMagic);
    put_u8(out, kVersion);
    put_u8(out, kTypeResponseChunk);
    put_u8(out, static_cast<std::uint8_t>(resp.status));
    put_u8(out, last ? 1 : 0);  // chunk flags: bit 0 = last
    put_u64(out, resp.request_id);
    put_u32(out, seq);
    if (seq == 0) {
      put_f64(out, resp.queue_us);
      put_f64(out, resp.total_us);
      if (resp.status == Status::kOk) {
        EB_REQUIRE(resp.tensor.rank() <= kMaxDims,
                   "tensor rank exceeds wire limit");
        put_u8(out, static_cast<std::uint8_t>(resp.tensor.rank()));
        for (std::size_t d = 0; d < resp.tensor.rank(); ++d) {
          EB_REQUIRE(resp.tensor.dim(d) <= UINT32_MAX,
                     "tensor dim exceeds wire limit");
          put_u32(out, static_cast<std::uint32_t>(resp.tensor.dim(d)));
        }
      } else {
        put_u8(out, 0);
      }
    }
    out.insert(out.end(), slab.begin() + static_cast<std::ptrdiff_t>(off),
               slab.begin() + static_cast<std::ptrdiff_t>(off + n));
    seal_frame(out);
    frames.push_back(std::move(out));
    off += n;
    ++seq;
  } while (off < slab.size());
  return frames;
}

DecodeStatus decode_request(const std::uint8_t* data, std::size_t size,
                            RequestFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeRequest, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    // Header-level failures with a known boundary are still skippable.
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  RequestFrame req;
  const std::uint8_t cls = r.get_u8();
  req.flags = r.get_u8();
  req.request_id = r.get_u64();
  // The envelope through the id field decoded cleanly iff the reader is
  // still ok here: a content-malformed frame then still has a
  // trustworthy id for its error response (pipelined clients must be
  // able to match the kInvalidArgument to a request).
  const bool id_ok = r.ok;
  req.deadline_us = r.get_u64();
  const std::uint16_t id_len = r.get_u16();
  req.model_id = r.get_bytes(id_len);
  if (!r.ok || cls >= kNumClasses || id_len == 0 ||
      !get_tensor(r, req.tensor)) {
    consumed = frame_size;
    out.request_id = id_ok ? req.request_id : 0;
    return DecodeStatus::kMalformed;
  }
  req.cls = static_cast<DeadlineClass>(cls);
  out = std::move(req);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

DecodeStatus decode_response(const std::uint8_t* data, std::size_t size,
                             ResponseFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeResponse, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  ResponseFrame resp;
  const std::uint8_t status = r.get_u8();
  (void)r.get_u8();  // reserved
  resp.request_id = r.get_u64();
  resp.queue_us = r.get_f64();
  resp.total_us = r.get_f64();
  if (!r.ok || status > static_cast<std::uint8_t>(Status::kInvalidArgument) ||
      !get_tensor(r, resp.tensor)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  resp.status = static_cast<Status>(status);
  out = std::move(resp);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

DecodeStatus decode_response_batch(const std::uint8_t* data,
                                   std::size_t size,
                                   std::vector<ResponseFrame>& out,
                                   std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeResponseBatch, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  (void)r.get_u8();  // reserved
  const std::uint16_t count = r.get_u16();
  if (!r.ok || count == 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  std::vector<ResponseFrame> members;
  members.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.get_u32();
    if (!r.ok || r.remaining < len) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;
    }
    Reader entry{r.p, len};
    ResponseFrame resp;
    if (!read_response_body(entry, resp) || entry.remaining != 0) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;
    }
    r.p += len;
    r.remaining -= len;
    members.push_back(std::move(resp));
  }
  if (r.remaining != 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;  // trailing bytes after last entry
  }
  out = std::move(members);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

DecodeStatus decode_response_chunk(const std::uint8_t* data,
                                   std::size_t size, ChunkFrame& out,
                                   std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeResponseChunk, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  ChunkFrame c;
  const std::uint8_t status = r.get_u8();
  const std::uint8_t cflags = r.get_u8();
  c.request_id = r.get_u64();
  c.seq = r.get_u32();
  if (!r.ok ||
      status > static_cast<std::uint8_t>(Status::kInvalidArgument)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  c.status = static_cast<Status>(status);
  c.last = (cflags & 1) != 0;
  if (c.seq == 0) {
    c.queue_us = r.get_f64();
    c.total_us = r.get_f64();
    const std::uint8_t ndims = r.get_u8();
    if (!r.ok || ndims > kMaxDims) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;
    }
    for (std::uint8_t d = 0; d < ndims; ++d) {
      const std::uint32_t dim = r.get_u32();
      if (!r.ok || dim == 0) {
        consumed = frame_size;
        return DecodeStatus::kMalformed;
      }
      c.shape.push_back(dim);
    }
  }
  if (!r.ok || r.remaining % 8 != 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;  // payload must be whole f64s
  }
  c.payload.assign(r.p, r.p + r.remaining);
  out = std::move(c);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_ping(const PingFrame& ping) {
  std::vector<std::uint8_t> out;
  out.reserve(20);
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypePing);
  put_u8(out, ping.pong ? 1 : 0);
  put_u8(out, 0);  // reserved
  put_u64(out, ping.nonce);
  seal_frame(out);
  return out;
}

DecodeStatus decode_ping(const std::uint8_t* data, std::size_t size,
                         PingFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypePing, r, frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  PingFrame p;
  const std::uint8_t kind = r.get_u8();
  (void)r.get_u8();  // reserved
  p.nonce = r.get_u64();
  if (!r.ok || kind > 1 || r.remaining != 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  p.pong = kind == 1;
  out = p;
  consumed = frame_size;
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_stats(const StatsFrame& stats) {
  std::vector<std::uint8_t> out;
  out.reserve(96 + 48 * stats.models.size());
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeStats);
  put_u8(out, stats.response ? 1 : 0);
  put_u8(out, 0);  // reserved
  put_u64(out, stats.request_id);
  if (stats.response) {
    put_u64(out, stats.submitted);
    put_u64(out, stats.completed);
    put_u64(out, stats.rejected);
    put_u64(out, stats.deadline_exceeded);
    put_u64(out, stats.errors);
    put_u64(out, stats.invalid);
    put_u64(out, stats.queue_depth);
    put_u64(out, stats.canaries_sent);
    put_u64(out, stats.canary_failures);
    put_u64(out, stats.rewrites);
    put_u64(out, stats.rewrite_us_last);
    EB_REQUIRE(stats.models.size() <= UINT16_MAX,
               "stats frame must hold <= 65535 models");
    put_u16(out, static_cast<std::uint16_t>(stats.models.size()));
    for (const auto& m : stats.models) {
      EB_REQUIRE(!m.id.empty() && m.id.size() <= UINT16_MAX,
                 "model id must be 1..65535 bytes");
      put_u16(out, static_cast<std::uint16_t>(m.id.size()));
      out.insert(out.end(), m.id.begin(), m.id.end());
      put_u64(out, m.input_size);
      put_u64(out, m.queue_depth);
      put_u64(out, m.completed);
    }
  }
  seal_frame(out);
  return out;
}

DecodeStatus decode_stats(const std::uint8_t* data, std::size_t size,
                          StatsFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeStats, r, frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  StatsFrame s;
  const std::uint8_t kind = r.get_u8();
  (void)r.get_u8();  // reserved
  s.request_id = r.get_u64();
  if (!r.ok || kind > 1) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  if (kind == 0) {
    if (r.remaining != 0) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;  // a request body ends after the id
    }
    out = std::move(s);
    consumed = frame_size;
    return DecodeStatus::kOk;
  }
  s.response = true;
  s.submitted = r.get_u64();
  s.completed = r.get_u64();
  s.rejected = r.get_u64();
  s.deadline_exceeded = r.get_u64();
  s.errors = r.get_u64();
  s.invalid = r.get_u64();
  s.queue_depth = r.get_u64();
  s.canaries_sent = r.get_u64();
  s.canary_failures = r.get_u64();
  s.rewrites = r.get_u64();
  s.rewrite_us_last = r.get_u64();
  const std::uint16_t count = r.get_u16();
  if (!r.ok) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  s.models.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    StatsModel m;
    const std::uint16_t id_len = r.get_u16();
    m.id = r.get_bytes(id_len);
    m.input_size = r.get_u64();
    m.queue_depth = r.get_u64();
    m.completed = r.get_u64();
    if (!r.ok || id_len == 0) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;
    }
    s.models.push_back(std::move(m));
  }
  if (r.remaining != 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;  // trailing bytes after last model
  }
  out = std::move(s);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

std::vector<std::uint8_t> encode_model_admin(const ModelAdminFrame& admin) {
  EB_REQUIRE(admin.model_id.size() <= UINT16_MAX,
             "model id must be <= 65535 bytes");
  EB_REQUIRE(admin.file.size() <= UINT16_MAX,
             "model file name must be <= 65535 bytes");
  std::vector<std::uint8_t> out;
  out.reserve(64 + admin.model_id.size() + admin.file.size() +
              admin.message.size() + 32 * admin.models.size());
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeModelAdmin);
  put_u8(out, admin.response ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(admin.op));
  put_u64(out, admin.request_id);
  put_u16(out, static_cast<std::uint16_t>(admin.model_id.size()));
  out.insert(out.end(), admin.model_id.begin(), admin.model_id.end());
  put_u16(out, static_cast<std::uint16_t>(admin.file.size()));
  out.insert(out.end(), admin.file.begin(), admin.file.end());
  if (admin.response) {
    put_u8(out, static_cast<std::uint8_t>(admin.status));
    EB_REQUIRE(admin.message.size() <= UINT16_MAX,
               "admin message must be <= 65535 bytes");
    put_u16(out, static_cast<std::uint16_t>(admin.message.size()));
    out.insert(out.end(), admin.message.begin(), admin.message.end());
    EB_REQUIRE(admin.models.size() <= UINT16_MAX,
               "admin frame must hold <= 65535 models");
    put_u16(out, static_cast<std::uint16_t>(admin.models.size()));
    for (const auto& id : admin.models) {
      EB_REQUIRE(!id.empty() && id.size() <= UINT16_MAX,
                 "model id must be 1..65535 bytes");
      put_u16(out, static_cast<std::uint16_t>(id.size()));
      out.insert(out.end(), id.begin(), id.end());
    }
  }
  seal_frame(out);
  return out;
}

DecodeStatus decode_model_admin(const std::uint8_t* data, std::size_t size,
                                ModelAdminFrame& out,
                                std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeModelAdmin, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  ModelAdminFrame a;
  const std::uint8_t kind = r.get_u8();
  const std::uint8_t op = r.get_u8();
  a.request_id = r.get_u64();
  const std::uint16_t id_len = r.get_u16();
  a.model_id = r.get_bytes(id_len);
  const std::uint16_t file_len = r.get_u16();
  a.file = r.get_bytes(file_len);
  if (!r.ok || kind > 1 ||
      op > static_cast<std::uint8_t>(ModelAdminOp::kList)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  a.op = static_cast<ModelAdminOp>(op);
  if (kind == 0) {
    if (r.remaining != 0) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;  // a request ends after the file
    }
    out = std::move(a);
    consumed = frame_size;
    return DecodeStatus::kOk;
  }
  a.response = true;
  const std::uint8_t status = r.get_u8();
  const std::uint16_t msg_len = r.get_u16();
  a.message = r.get_bytes(msg_len);
  const std::uint16_t count = r.get_u16();
  if (!r.ok ||
      status > static_cast<std::uint8_t>(Status::kInvalidArgument)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  a.status = static_cast<Status>(status);
  a.models.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t len = r.get_u16();
    std::string id = r.get_bytes(len);
    if (!r.ok || len == 0) {
      consumed = frame_size;
      return DecodeStatus::kMalformed;
    }
    a.models.push_back(std::move(id));
  }
  if (r.remaining != 0) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;  // trailing bytes after last model
  }
  out = std::move(a);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

DecodeStatus peek_type(const std::uint8_t* data, std::size_t size,
                       std::uint8_t& type_out) {
  if (size < 10) {  // prefix + magic + version + type
    return DecodeStatus::kNeedMoreData;
  }
  std::uint32_t body_len = 0;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
    magic |= static_cast<std::uint32_t>(data[4 + i]) << (8 * i);
  }
  if (body_len > kMaxFrameBytes) {
    return DecodeStatus::kTooLarge;
  }
  if (magic != kMagic) {
    return DecodeStatus::kBadMagic;
  }
  if (data[8] != kVersion) {
    return DecodeStatus::kBadVersion;
  }
  type_out = data[9];
  return DecodeStatus::kOk;
}

bool ChunkAssembler::feed(const ChunkFrame& chunk) {
  auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [&](const auto& kv) { return kv.first == chunk.request_id; });
  if (chunk.seq == 0) {
    if (it != pending_.end()) {
      pending_.erase(it);  // restarted stream: drop the stale partial
      return false;
    }
    Partial p;
    p.header.request_id = chunk.request_id;
    p.header.status = chunk.status;
    p.header.queue_us = chunk.queue_us;
    p.header.total_us = chunk.total_us;
    std::size_t elems = chunk.shape.empty() ? 0 : 1;
    for (const std::size_t d : chunk.shape) {
      if (d == 0 || elems > kMaxStreamBytes / 8 / d) {
        return false;
      }
      elems *= d;
    }
    if (chunk.status == Status::kOk && !chunk.shape.empty()) {
      p.header.tensor = bnn::Tensor(chunk.shape);
    }
    p.bytes = chunk.payload;
    p.next_seq = 1;
    if (chunk.last) {
      // Single-chunk stream: finalize immediately.
      if (p.bytes.size() != 8 * p.header.tensor.size()) {
        return false;
      }
      for (std::size_t i = 0; i < p.header.tensor.size(); ++i) {
        std::uint64_t v = 0;
        for (int b = 0; b < 8; ++b) {
          v |= static_cast<std::uint64_t>(p.bytes[8 * i +
                                                  static_cast<std::size_t>(b)])
               << (8 * b);
        }
        p.header.tensor[i] = std::bit_cast<double>(v);
      }
      ready_.push_back(std::move(p.header));
      return true;
    }
    pending_.emplace_back(chunk.request_id, std::move(p));
    return true;
  }
  if (it == pending_.end() || chunk.seq != it->second.next_seq) {
    if (it != pending_.end()) {
      pending_.erase(it);  // out-of-sequence: the stream is unusable
    }
    return false;
  }
  Partial& p = it->second;
  if (p.bytes.size() + chunk.payload.size() > 8 * p.header.tensor.size() ||
      p.bytes.size() + chunk.payload.size() > kMaxStreamBytes) {
    pending_.erase(it);
    return false;
  }
  p.bytes.insert(p.bytes.end(), chunk.payload.begin(), chunk.payload.end());
  p.next_seq = chunk.seq + 1;
  if (!chunk.last) {
    return true;
  }
  if (p.bytes.size() != 8 * p.header.tensor.size()) {
    pending_.erase(it);
    return false;
  }
  for (std::size_t i = 0; i < p.header.tensor.size(); ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(p.bytes[8 * i +
                                              static_cast<std::size_t>(b)])
           << (8 * b);
    }
    p.header.tensor[i] = std::bit_cast<double>(v);
  }
  ready_.push_back(std::move(p.header));
  pending_.erase(it);
  return true;
}

std::vector<ResponseFrame> ChunkAssembler::take_ready() {
  std::vector<ResponseFrame> out;
  out.swap(ready_);
  return out;
}

}  // namespace eb::serve::wire
