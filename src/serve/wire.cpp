#include "serve/wire.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace eb::serve::wire {

namespace {

// ---- little-endian append helpers -----------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// ---- bounds-checked reader ------------------------------------------------

// Sequential reader over one frame body. Every get_* checks the remaining
// byte count; `ok` latches false on the first underrun, and the getters
// return zeros from then on, so decode code can read linearly and check
// `ok` at the checkpoints.
struct Reader {
  const std::uint8_t* p;
  std::size_t remaining;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || remaining < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t get_u8() {
    if (!take(1)) {
      return 0;
    }
    const std::uint8_t v = p[0];
    p += 1;
    remaining -= 1;
    return v;
  }
  std::uint16_t get_u16() {
    if (!take(2)) {
      return 0;
    }
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p[i])
                                          << (8 * i)));
    }
    p += 2;
    remaining -= 2;
    return v;
  }
  std::uint32_t get_u32() {
    if (!take(4)) {
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    p += 4;
    remaining -= 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!take(8)) {
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    remaining -= 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::string get_bytes(std::size_t n) {
    if (!take(n)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    remaining -= n;
    return s;
  }
};

void put_tensor(std::vector<std::uint8_t>& out, const bnn::Tensor& t) {
  EB_REQUIRE(t.rank() <= kMaxDims, "tensor rank exceeds wire limit");
  put_u8(out, static_cast<std::uint8_t>(t.rank()));
  for (std::size_t d = 0; d < t.rank(); ++d) {
    EB_REQUIRE(t.dim(d) <= UINT32_MAX, "tensor dim exceeds wire limit");
    put_u32(out, static_cast<std::uint32_t>(t.dim(d)));
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    put_f64(out, t[i]);
  }
}

// Reads ndims + dims + payload. Returns false on rank/dims abuse or when
// the remaining body cannot hold the declared payload.
bool get_tensor(Reader& r, bnn::Tensor& t) {
  const std::uint8_t ndims = r.get_u8();
  if (!r.ok || ndims > kMaxDims) {
    return false;
  }
  std::vector<std::size_t> shape;
  shape.reserve(ndims);
  std::size_t elems = ndims == 0 ? 0 : 1;
  for (std::uint8_t d = 0; d < ndims; ++d) {
    const std::uint32_t dim = r.get_u32();
    if (!r.ok || dim == 0) {
      return false;
    }
    // Overflow-safe element count: the payload must fit in the remaining
    // body anyway, which kMaxFrameBytes bounds, so cap eagerly.
    if (elems > kMaxFrameBytes / 8 / dim) {
      return false;
    }
    elems *= dim;
    shape.push_back(dim);
  }
  if (!r.ok || r.remaining != elems * 8) {
    return false;  // payload must use exactly the rest of the body
  }
  if (ndims == 0) {
    t = bnn::Tensor();
    return true;
  }
  bnn::Tensor out(shape);
  for (std::size_t i = 0; i < elems; ++i) {
    out[i] = r.get_f64();
  }
  t = std::move(out);
  return r.ok;
}

// Parses the length prefix + common body header (magic, version, type).
// On success leaves `r` positioned after the type byte and sets
// `frame_size` to the whole frame's size.
DecodeStatus open_frame(const std::uint8_t* data, std::size_t size,
                        std::uint8_t want_type, Reader& r,
                        std::size_t& frame_size) {
  if (size < 4) {
    return DecodeStatus::kNeedMoreData;
  }
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  if (body_len > kMaxFrameBytes) {
    return DecodeStatus::kTooLarge;
  }
  if (size < 4 + static_cast<std::size_t>(body_len)) {
    return DecodeStatus::kNeedMoreData;
  }
  frame_size = 4 + static_cast<std::size_t>(body_len);
  r = Reader{data + 4, body_len};
  const std::uint32_t magic = r.get_u32();
  if (!r.ok || magic != kMagic) {
    return DecodeStatus::kBadMagic;
  }
  const std::uint8_t version = r.get_u8();
  if (!r.ok || version != kVersion) {
    return DecodeStatus::kBadVersion;
  }
  const std::uint8_t type = r.get_u8();
  if (!r.ok || type != want_type) {
    return DecodeStatus::kBadType;
  }
  return DecodeStatus::kOk;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMoreData:
      return "need_more_data";
    case DecodeStatus::kBadMagic:
      return "bad_magic";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kBadType:
      return "bad_type";
    case DecodeStatus::kTooLarge:
      return "too_large";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  EB_UNREACHABLE("unknown wire::DecodeStatus");
}

std::vector<std::uint8_t> encode_request(const RequestFrame& req) {
  EB_REQUIRE(!req.model_id.empty() && req.model_id.size() <= UINT16_MAX,
             "model id must be 1..65535 bytes");
  EB_REQUIRE(static_cast<std::size_t>(req.cls) < kNumClasses,
             "invalid deadline class");
  std::vector<std::uint8_t> out;
  out.reserve(64 + req.model_id.size() + 8 * req.tensor.size());
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeRequest);
  put_u8(out, static_cast<std::uint8_t>(req.cls));
  put_u8(out, 0);  // reserved
  put_u64(out, req.request_id);
  put_u64(out, req.deadline_us);
  put_u16(out, static_cast<std::uint16_t>(req.model_id.size()));
  out.insert(out.end(), req.model_id.begin(), req.model_id.end());
  put_tensor(out, req.tensor);
  const std::uint32_t body_len = static_cast<std::uint32_t>(out.size() - 4);
  EB_REQUIRE(body_len <= kMaxFrameBytes, "request frame exceeds size cap");
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return out;
}

std::vector<std::uint8_t> encode_response(const ResponseFrame& resp) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + 8 * resp.tensor.size());
  put_u32(out, 0);  // length placeholder
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, kTypeResponse);
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  put_u8(out, 0);  // reserved
  put_u64(out, resp.request_id);
  put_f64(out, resp.queue_us);
  put_f64(out, resp.total_us);
  if (resp.status == Status::kOk) {
    put_tensor(out, resp.tensor);
  } else {
    put_u8(out, 0);  // ndims = 0: no payload on non-ok responses
  }
  const std::uint32_t body_len = static_cast<std::uint32_t>(out.size() - 4);
  EB_REQUIRE(body_len <= kMaxFrameBytes, "response frame exceeds size cap");
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body_len >> (8 * i));
  }
  return out;
}

DecodeStatus decode_request(const std::uint8_t* data, std::size_t size,
                            RequestFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeRequest, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    // Header-level failures with a known boundary are still skippable.
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  RequestFrame req;
  const std::uint8_t cls = r.get_u8();
  (void)r.get_u8();  // reserved
  req.request_id = r.get_u64();
  req.deadline_us = r.get_u64();
  const std::uint16_t id_len = r.get_u16();
  req.model_id = r.get_bytes(id_len);
  if (!r.ok || cls >= kNumClasses || id_len == 0 ||
      !get_tensor(r, req.tensor)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  req.cls = static_cast<DeadlineClass>(cls);
  out = std::move(req);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

DecodeStatus decode_response(const std::uint8_t* data, std::size_t size,
                             ResponseFrame& out, std::size_t& consumed) {
  consumed = 0;
  Reader r{nullptr, 0};
  std::size_t frame_size = 0;
  const DecodeStatus head = open_frame(data, size, kTypeResponse, r,
                                       frame_size);
  if (head != DecodeStatus::kOk) {
    if (head != DecodeStatus::kNeedMoreData &&
        head != DecodeStatus::kTooLarge) {
      consumed = frame_size;
    }
    return head;
  }
  ResponseFrame resp;
  const std::uint8_t status = r.get_u8();
  (void)r.get_u8();  // reserved
  resp.request_id = r.get_u64();
  resp.queue_us = r.get_f64();
  resp.total_us = r.get_f64();
  if (!r.ok || status > static_cast<std::uint8_t>(Status::kInvalidArgument) ||
      !get_tensor(r, resp.tensor)) {
    consumed = frame_size;
    return DecodeStatus::kMalformed;
  }
  resp.status = static_cast<Status>(status);
  out = std::move(resp);
  consumed = frame_size;
  return DecodeStatus::kOk;
}

}  // namespace eb::serve::wire
