/// \file
/// \brief Serving adapter for mapped crossbar executors: wraps any
/// map::MappedExecutor into a serve::BatchHandler.
///
/// This is the bridge between the request-level serving layer and the
/// crossbar-level batch API. The handler decodes each request tensor back
/// to the executor's m input bits (threshold at 0.5), runs one
/// MappedExecutor::execute_batch over the whole dispatched batch on the
/// *server's own pool* -- so request fan-out, WDM passes and nested
/// crossbar shards interleave in one re-entrant task queue -- and returns
/// the popcounts as tensors. Because execute_batch is bit-identical to a
/// serial execute() loop, dynamic batching never changes a request's
/// result; with a zero-noise model results are exact for any worker count
/// and any coalescing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "bnn/tensor.hpp"
#include "common/bitvec.hpp"
#include "device/noise.hpp"
#include "mapping/executor.hpp"
#include "serve/server.hpp"

namespace eb::serve {

/// The mapped backends' request wire format: element k of a request
/// tensor encodes input bit k, thresholded at 0.5. `t` must carry
/// exactly `m` elements (the executor's dims().m). Shared by the handler
/// and by benches that need to drive an executor with the same decode.
[[nodiscard]] BitVec tensor_to_bits(const bnn::Tensor& t, std::size_t m);

/// Builds a BatchHandler serving `exec` under `noise`. The handler owns a
/// mutex-guarded RngStream seeded with `seed` and takes one split() per
/// dispatched batch, so it is safe for multi-worker servers; note that
/// with a noisy model and several workers the batch composition (and
/// therefore the noise draws) depends on arrival timing -- use one worker
/// or a zero-noise model when run-to-run bit-reproducibility matters.
/// Requests must carry exactly exec->dims().m elements; outputs carry
/// exec->dims().n popcounts.
[[nodiscard]] BatchHandler make_mapped_handler(
    std::shared_ptr<const map::MappedExecutor> exec,
    std::shared_ptr<const dev::NoiseModel> noise,
    std::uint64_t seed = 0x5E17EEULL);

}  // namespace eb::serve
