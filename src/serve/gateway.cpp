#include "serve/gateway.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bnn/format.hpp"
#include "common/error.hpp"

namespace eb::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

std::size_t class_index(DeadlineClass cls) {
  const auto c = static_cast<std::size_t>(cls);
  EB_REQUIRE(c < kNumClasses, "invalid deadline class");
  return c;
}

}  // namespace

ServerConfig default_model_server_config() {
  ServerConfig scfg;
  // Shallow server queue: backlog must pool in the gateway's admission
  // queues (where the weighted scheduler arbitrates), not in the model
  // server's FIFO.
  scfg.queue_capacity = 2 * scfg.max_batch;
  return scfg;
}

std::string GatewaySnapshot::summary() const {
  std::size_t invalid_total = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    invalid_total += invalid[c];
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "gateway: %zu models | served %zu/%zu ok (%zu deadline, "
                "%zu rejected, %zu invalid) | per-class ok i/b/e "
                "%zu/%zu/%zu",
                models.size(), completed, submitted, deadline_exceeded,
                rejected, invalid_total, classes[0].completed,
                classes[1].completed, classes[2].completed);
  return buf;
}

/// Registry slot: the model's server plus its DRR queue handles.
struct Gateway::ModelEntry {
  std::string id;
  double weight = 1.0;
  std::size_t input_size = 0;  // 0 = unchecked
  /// Set only for load_model() registrations: the gateway owns the
  /// decoded network. Declared before `server` so the server (which
  /// borrows the network) is destroyed first.
  std::shared_ptr<const bnn::Network> owned_net;
  std::unique_ptr<Server> server;
  std::array<std::size_t, kNumClasses> slots{};
};

Gateway::Gateway(GatewayConfig cfg)
    : cfg_(cfg), pool_(cfg.pool_threads) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    EB_REQUIRE(cfg_.classes[c].weight > 0.0, "class weight must be > 0");
    EB_REQUIRE(cfg_.classes[c].queue_capacity >= 1,
               "class queue capacity must be >= 1");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Gateway::~Gateway() { shutdown(); }

void Gateway::register_model(const std::string& id, const bnn::Network& net,
                             ModelConfig mcfg) {
  if (mcfg.input_size == 0 && net.layer_count() > 0) {
    // MLP-style networks declare their input width on the first layer;
    // conv front-ends do not, so those stay unchecked unless the caller
    // sets ModelConfig::input_size.
    mcfg.input_size = net.layer(0).spec().in_features;
  }
  // The Network server ctor (per-worker BatchRunners, bit-exact forward
  // path) rather than a hand-rolled handler.
  install_entry(id, mcfg, [&](const ServerConfig& scfg) {
    return std::make_unique<Server>(net, pool_, scfg);
  });
}

void Gateway::register_model(const std::string& id, BatchHandler handler,
                             ModelConfig mcfg) {
  install_entry(id, mcfg, [&](const ServerConfig& scfg) {
    return std::make_unique<Server>(std::move(handler), pool_, scfg);
  });
}

void Gateway::register_model(const std::string& id,
                             std::shared_ptr<const map::MappedExecutor> exec,
                             std::shared_ptr<const dev::NoiseModel> noise,
                             ModelConfig mcfg) {
  if (mcfg.input_size == 0) {
    mcfg.input_size = exec->dims().m;  // the executors' hard requirement
  }
  register_model(id,
                 make_mapped_handler(std::move(exec), std::move(noise)),
                 mcfg);
}

void Gateway::load_model(const std::string& id, const std::string& file,
                         ModelConfig mcfg) {
  EB_REQUIRE(!cfg_.model_dir.empty(),
             "model loading is disabled: the gateway has no model_dir");
  // The wire's load op hands this name straight through, so confine it
  // to a plain file name inside model_dir -- no separators, no "..".
  EB_REQUIRE(!file.empty() && file.find('/') == std::string::npos &&
                 file.find('\\') == std::string::npos && file != "." &&
                 file != "..",
             "model file must be a plain file name, got '" + file + "'");
  auto net = std::make_shared<const bnn::Network>(
      bnn::load_network(cfg_.model_dir + "/" + file));
  if (mcfg.input_size == 0 && net->layer_count() > 0) {
    mcfg.input_size = net->layer(0).spec().in_features;
  }
  install_entry(
      id, mcfg,
      [&](const ServerConfig& scfg) {
        return std::make_unique<Server>(*net, pool_, scfg);
      },
      net);
}

void Gateway::install_entry(
    const std::string& id, const ModelConfig& mcfg,
    const std::function<std::unique_ptr<Server>(const ServerConfig&)>&
        make_server,
    std::shared_ptr<const bnn::Network> owned) {
  EB_REQUIRE(!id.empty() && id.size() <= 255,
             "model id must be 1..255 bytes");
  EB_REQUIRE(mcfg.weight > 0.0, "model weight must be > 0");
  ServerConfig scfg = mcfg.server;
  scfg.on_dequeue = [this] { cv_.notify_all(); };
  if (scfg.clock == nullptr) {
    // Model servers tick on the gateway's clock unless a registration
    // injects its own: one VirtualClock drives admission deadlines AND
    // every model's batching windows.
    scfg.clock = cfg_.clock;
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->id = id;
  entry->weight = mcfg.weight;
  entry->input_size = mcfg.input_size;
  entry->owned_net = std::move(owned);
  entry->server = make_server(scfg);
  const std::lock_guard<std::mutex> lock(mu_);
  EB_REQUIRE(!draining_, "register_model after shutdown");
  EB_REQUIRE(models_.count(id) == 0,
             "model id '" + id + "' is already registered");
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const std::size_t h =
        drr_.add_queue(mcfg.weight * cfg_.classes[c].weight);
    entry->slots[c] = h;
    if (h < slot_entry_.size()) {
      slot_entry_[h] = entry;  // reused slot of an unregistered model
    } else {
      EB_ASSERT(h == slot_entry_.size(),
                "DRR handle / slot table out of sync");
      slot_entry_.push_back(entry);
    }
  }
  models_[id] = entry;
}

bool Gateway::unregister_model(const std::string& id) {
  std::shared_ptr<ModelEntry> entry;
  std::vector<GwPending> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(id);
    if (it == models_.end()) {
      return false;
    }
    entry = it->second;
    models_.erase(it);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      auto drained = drr_.remove_queue(entry->slots[c]);
      EB_ASSERT(class_depth_[c] >= drained.size(),
                "class depth accounting underflow");
      class_depth_[c] -= drained.size();
      slot_entry_[entry->slots[c]] = nullptr;
      for (auto& r : drained) {
        orphans.push_back(std::move(r));
      }
    }
  }
  // Admission-queue stragglers: the model is gone before they were
  // dispatched; reject them (outside the lock -- callbacks are user code).
  for (auto& r : orphans) {
    Result res;
    res.status = Status::kRejected;
    finish(r.cls, r.done, std::move(res));
  }
  // Everything already forwarded drains inside the model's server; any
  // dispatch racing this shutdown gets the server's kRejected, which the
  // forward callback passes through. Every accepted request is fulfilled.
  entry->server->shutdown();
  return true;
}

std::vector<std::string> Gateway::model_ids() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, _] : models_) {
    ids.push_back(id);
  }
  return ids;
}

bool Gateway::has_model(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return models_.count(id) != 0;
}

std::future<Result> Gateway::submit(const std::string& model,
                                    bnn::Tensor input, DeadlineClass cls,
                                    std::uint64_t deadline_us) {
  auto p = std::make_shared<std::promise<Result>>();
  auto fut = p->get_future();
  submit_async(model, std::move(input), cls, deadline_us,
               [p](Result r) { p->set_value(std::move(r)); });
  return fut;
}

void Gateway::submit_async(const std::string& model, bnn::Tensor input,
                           DeadlineClass cls, std::uint64_t deadline_us,
                           Completion done) {
  EB_REQUIRE(done != nullptr, "submit_async needs a completion callback");
  const std::size_t c = class_index(cls);
  GwPending r;
  r.input = std::move(input);
  r.cls = cls;
  r.done = std::move(done);
  bool accepted = false;
  Status reject_status = Status::kRejected;
  std::size_t depth_after = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(model);
    if (it != models_.end() && it->second->input_size != 0 &&
        r.input.size() != it->second->input_size) {
      // Shape gate at admission: a wrong-shaped request must fail alone
      // with kInvalidArgument, never inside a batch where the handler's
      // exception would take co-batched tenants down with it.
      reject_status = Status::kInvalidArgument;
    } else if (!draining_ && it != models_.end() &&
               class_depth_[c] < cfg_.classes[c].queue_capacity) {
      // Timestamp under the lock: per-queue order == admission order.
      r.enqueue = clk().now();
      const std::uint64_t effective =
          deadline_us != 0 ? deadline_us : cfg_.classes[c].default_deadline_us;
      r.deadline = effective == 0
                       ? Clock::time_point::max()
                       : r.enqueue + std::chrono::microseconds(effective);
      r.entry = it->second;
      drr_.push(it->second->slots[c], std::move(r));
      depth_after = ++class_depth_[c];
      accepted = true;
    }
  }
  if (accepted) {
    class_metrics_[c].record_submitted(depth_after);
    cv_.notify_all();
  } else {
    // Unknown model, wrong request shape, class partition full, or
    // draining: terminal status, delivered inline.
    Result res;
    res.status = reject_status;
    finish(cls, r.done, std::move(res));
  }
}

void Gateway::dispatcher_loop() {
  for (;;) {
    GwPending item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (drr_.total_size() == 0) {
          if (draining_) {
            return;
          }
          cv_.wait(lock, [this] {
            return draining_ || drr_.total_size() != 0;
          });
          if (draining_ && drr_.total_size() == 0) {
            return;
          }
        }
        auto popped = drr_.pop_next([this](std::size_t h) {
          const auto& e = slot_entry_[h];
          return e != nullptr && e->server->queue_depth() <
                                     e->server->config().queue_capacity;
        });
        if (popped.has_value()) {
          item = std::move(popped->second);
          const std::size_t c = class_index(item.cls);
          EB_ASSERT(class_depth_[c] > 0, "class depth accounting underflow");
          --class_depth_[c];
          break;
        }
        // Backlog exists but every target server is at capacity: wait for
        // an on_dequeue notification (1 ms backstop against lost wakeups).
        cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
    forward(std::move(item));
  }
}

void Gateway::forward(GwPending item) {
  const auto now = clk().now();
  if (now >= item.deadline) {
    // Expired while waiting for admission dispatch: terminal here, the
    // model server never sees it.
    Result res;
    res.status = Status::kDeadlineExceeded;
    res.queue_us = to_us(now - item.enqueue);
    res.total_us = res.queue_us;
    finish(item.cls, item.done, std::move(res));
    return;
  }
  std::uint64_t remaining_us = 0;  // 0 = no deadline for the server
  if (item.deadline != Clock::time_point::max()) {
    const auto rem = std::chrono::duration_cast<std::chrono::microseconds>(
        item.deadline - now);
    // >= 1: a deadline that rounds to zero must stay a deadline.
    remaining_us = std::max<std::int64_t>(rem.count(), 1);
  }
  const auto enqueue = item.enqueue;
  const DeadlineClass cls = item.cls;
  Server& server = *item.entry->server;
  server.submit_async(
      std::move(item.input), remaining_us,
      [this, enqueue, cls, done = std::move(item.done)](Result r) mutable {
        // Rebase to end-to-end latency: admission -> completion (queue_us
        // keeps the server-side queueing component).
        r.total_us = to_us(clk().now() - enqueue);
        finish(cls, done, std::move(r));
      });
}

void Gateway::finish(DeadlineClass cls, Completion& done, Result res) {
  const std::size_t c = class_index(cls);
  switch (res.status) {
    case Status::kOk:
      class_metrics_[c].record_completed(res.total_us);
      break;
    case Status::kDeadlineExceeded:
      class_metrics_[c].record_deadline_exceeded();
      break;
    case Status::kRejected:
      class_metrics_[c].record_rejected();
      break;
    case Status::kInternalError:
      class_errors_[c].fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kInvalidArgument:
      class_invalid_[c].fetch_add(1, std::memory_order_relaxed);
      break;
  }
  done(std::move(res));
}

void Gateway::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  const std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) {
    return;
  }
  dispatcher_.join();  // exits once every admission queue is drained
  std::vector<std::shared_ptr<ModelEntry>> entries;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(models_.size());
    for (const auto& [_, e] : models_) {
      entries.push_back(e);
    }
  }
  for (const auto& e : entries) {
    e->server->shutdown();  // fulfils everything already forwarded
  }
  joined_ = true;
}

GatewaySnapshot Gateway::metrics() const {
  GatewaySnapshot s;
  std::vector<std::shared_ptr<ModelEntry>> entries;
  std::array<std::size_t, kNumClasses> depth{};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    depth = class_depth_;
    entries.reserve(models_.size());
    for (const auto& [_, e] : models_) {
      entries.push_back(e);
    }
  }
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    s.classes[c] = class_metrics_[c].snapshot(depth[c]);
    s.errors[c] = class_errors_[c].load(std::memory_order_relaxed);
    s.invalid[c] = class_invalid_[c].load(std::memory_order_relaxed);
    s.submitted += s.classes[c].submitted;
    s.completed += s.classes[c].completed;
    s.deadline_exceeded += s.classes[c].deadline_exceeded;
    s.rejected += s.classes[c].rejected;
  }
  s.canaries_sent = canaries_sent_.load(std::memory_order_relaxed);
  s.canary_failures = canary_failures_.load(std::memory_order_relaxed);
  s.rewrites = rewrites_.load(std::memory_order_relaxed);
  s.rewrite_us_last = rewrite_us_last_.load(std::memory_order_relaxed);
  s.models.reserve(entries.size());
  for (const auto& e : entries) {
    s.models.push_back(
        ModelSnapshot{e->id, e->weight, e->input_size, e->server->metrics()});
  }
  return s;
}

void Gateway::record_canary(bool ok) {
  canaries_sent_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    canary_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Gateway::record_rewrite(std::uint64_t duration_us) {
  rewrites_.fetch_add(1, std::memory_order_relaxed);
  rewrite_us_last_.store(duration_us, std::memory_order_relaxed);
}

}  // namespace eb::serve
