/// \file
/// \brief Pipelined nonblocking wire client for one gateway replica:
/// the connection half of serve::Balancer.
///
/// One ReplicaClient owns one TCP connection to one replica process
/// (a Gateway behind a TcpFrontend) and a background I/O thread that
/// drives it with poll(2): outbound request frames drain from a queue
/// fed by submit(), inbound bytes reassemble into frames demultiplexed
/// by wire::peek_type -- type-2 responses matched to their callbacks by
/// the echoed request id (ids are assigned internally, so any number of
/// requests pipeline on the one connection), pongs feeding the health
/// check, stats responses cached for the balancer's load scoring, and
/// type-7 model-admin responses matched to admin() callbacks the same
/// way requests are.
///
/// Health + death semantics: the thread pings every `ping_interval_ms`
/// and polls stats on the same cadence; a connection with no pong for
/// `ping_timeout_ms`, a failed read/write, a peer close or any
/// stream-desyncing frame is torn down. Teardown fails every in-flight
/// request through its death handler (the balancer's retry hook) --
/// exactly once, in submission order -- and, when `reconnect` is set,
/// the thread dials again after `reconnect_backoff_ms`. submit() on a
/// disconnected client returns false immediately, so callers never
/// queue into a dead socket.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/wire.hpp"

namespace eb::serve {

/// Where a replica listens (IPv4).
struct ReplicaAddress {
  std::string host = "127.0.0.1";  ///< Dotted quad.
  std::uint16_t port = 0;          ///< TcpFrontend::port() of the replica.
};

/// ReplicaClient knobs.
struct ReplicaClientConfig {
  ReplicaAddress address;  ///< The replica to dial.
  /// connect(2) give-up time per dial attempt.
  std::uint32_t connect_timeout_ms = 1000;
  /// Pause between dial attempts while disconnected.
  std::uint32_t reconnect_backoff_ms = 200;
  /// Ping + stats-poll cadence while connected.
  std::uint32_t ping_interval_ms = 100;
  /// No pong for this long marks the replica dead (0 = never).
  std::uint32_t ping_timeout_ms = 1000;
  /// Dial again after a lost connection. false = stay dead (tests).
  bool reconnect = true;
};

/// One pipelined connection to one gateway replica. Thread-safe:
/// submit() may be called from any thread; handlers run on the
/// client's I/O thread and must not block it for long.
class ReplicaClient {
 public:
  /// Receives the decoded response for one submitted request.
  using ResponseHandler = std::function<void(wire::ResponseFrame)>;
  /// Receives the decoded type-7 response for one admin request.
  using AdminHandler = std::function<void(wire::ModelAdminFrame)>;
  /// Runs instead of the ResponseHandler when the connection died with
  /// the request still in flight (the balancer's retry hook).
  using DeathHandler = std::function<void()>;

  /// Starts the I/O thread (dialing begins immediately).
  explicit ReplicaClient(ReplicaClientConfig cfg);
  /// shutdown() if still running.
  ~ReplicaClient();

  ReplicaClient(const ReplicaClient&) = delete;             ///< Owns a thread.
  ReplicaClient& operator=(const ReplicaClient&) = delete;  ///< Owns a thread.

  /// Queues one request frame (req.request_id is overwritten with an
  /// internally-assigned id). Returns true when the request is on the
  /// wire queue -- exactly one of `on_response` / `on_death` will then
  /// run later, on the I/O thread. Returns false (neither handler runs)
  /// when the client is disconnected or shut down.
  bool submit(wire::RequestFrame req, ResponseHandler on_response,
              DeathHandler on_death);

  /// Queues one type-7 model-admin request (req.request_id is
  /// overwritten, req.response forced false). Same contract as submit():
  /// true means exactly one of `on_response` / `on_death` runs later on
  /// the I/O thread; false (disconnected / shut down) means neither.
  bool admin(wire::ModelAdminFrame req, AdminHandler on_response,
             DeathHandler on_death);

  /// True while the connection is established and healthy.
  [[nodiscard]] bool alive() const;
  /// Requests submitted but not yet answered or failed.
  [[nodiscard]] std::size_t in_flight() const;
  /// Latest stats response from the replica (value-initialized until
  /// has_stats()); the balancer's load + shape-gate signal.
  [[nodiscard]] wire::StatsFrame stats() const;
  /// True once at least one stats response arrived.
  [[nodiscard]] bool has_stats() const;
  /// The address this client dials.
  [[nodiscard]] const ReplicaAddress& address() const {
    return cfg_.address;
  }

  /// Lifetime counters (monotonic, exact once traffic quiesces).
  struct Counters {
    std::size_t connects = 0;   ///< Successful dials.
    std::size_t deaths = 0;     ///< Connection teardowns.
    std::size_t requests = 0;   ///< Frames accepted by submit().
    std::size_t responses = 0;  ///< Type-2 responses delivered.
    std::size_t failed = 0;     ///< In-flight requests failed by a death.
    std::size_t pongs = 0;      ///< Health-check pongs received.
    std::size_t admin_responses = 0;  ///< Type-7 responses delivered.
  };
  /// Snapshot of the lifetime counters.
  [[nodiscard]] Counters counters() const;

  /// Tears the connection down (failing in-flight requests through
  /// their death handlers) and joins the I/O thread. Idempotent.
  void shutdown();

 private:
  /// One in-flight request. Exactly one of on_response / on_admin is
  /// set (requests and admin frames share the id space and the map, so
  /// teardown fails everything in one id-ordered pass).
  struct Pending {
    ResponseHandler on_response;
    AdminHandler on_admin;
    DeathHandler on_death;
  };

  void thread_main();
  bool dial();
  void io_loop();
  void teardown();
  void wake();

  ReplicaClientConfig cfg_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool connected_ = false;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::deque<std::vector<std::uint8_t>> outq_;
  wire::StatsFrame last_stats_;
  bool have_stats_ = false;

  int wake_fd_ = -1;  // eventfd; created once, lives as long as the client

  std::atomic<std::size_t> connects_{0};
  std::atomic<std::size_t> deaths_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> responses_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::size_t> pongs_{0};
  std::atomic<std::size_t> admin_responses_{0};

  std::thread thread_;
  std::mutex join_mu_;
  bool joined_ = false;
};

}  // namespace eb::serve
