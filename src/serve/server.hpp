/// \file
/// \brief Concurrent batch-serving layer over the batched inference engine.
///
/// BatchRunner is a single-caller engine: one thread hands it a whole
/// sample vector and waits. A serving workload is the opposite shape --
/// many callers, one tensor each, latency budgets -- so serve::Server puts
/// a request queue with a *dynamic batching* policy in front of N worker
/// BatchRunners (Clipper-style adaptive batching / Triton-style delayed
/// batch windows):
///
///     submit(Tensor) -> future<Result>
///          |                                    workers (N threads)
///          v                                   +-> BatchRunner --+
///     [ lock-guarded FIFO queue ] -- batches --+-> BatchRunner --+-> shared
///       close batch when max_batch             +-> BatchRunner --+   pool
///       reached OR the oldest member's
///       batching_window_us expires, whichever first
///
/// Policy details:
///  * A request joins a batch only if it arrived within batching_window_us
///    of the batch's oldest member -- window 0 therefore means "no
///    coalescing" (every request is served alone), which is the baseline
///    the load bench compares against. The window bounds a batch's age
///    spread even when dispatch is late, so under sustained overload a
///    batch holds at most ~window/inter-arrival-gap requests: pick a
///    window of at least max_batch x the expected arrival gap to let
///    batches fill (greedy backlog-filling would batch better there, but
///    it would also erase the window-0 baseline and the age-spread
///    latency bound). queue_capacity and deadlines are the overload
///    backstops.
///  * Per-request deadlines: a request whose deadline has passed when its
///    batch is formed completes with Status::kDeadlineExceeded (it never
///    occupies GEMM space, and it is never silently dropped).
///  * shutdown() stops admissions, drains the queue (window waits are
///    skipped while draining), and joins the workers; every accepted
///    request's future is fulfilled before shutdown() returns. Submissions
///    after shutdown -- and submissions that find the queue at
///    queue_capacity -- complete immediately with Status::kRejected.
///
/// All workers share one re-entrant ThreadPool: a batch's layer fan-out
/// and any nested crossbar-shard parallel_for (mapped executors take the
/// same pool) interleave in one task queue instead of oversubscribing the
/// machine with per-worker pools. See docs/SERVING.md for the lifecycle
/// walk-through and a tuning guide.
///
/// The Network handler is bit-exact: every Result::output equals
/// net.forward(input) no matter how requests were coalesced into batches,
/// so serving is loss-free *and* reproducible under any interleaving.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "bnn/batch_runner.hpp"
#include "bnn/network.hpp"
#include "bnn/tensor.hpp"
#include "common/clock.hpp"
#include "common/thread_pool.hpp"
#include "serve/metrics.hpp"

namespace eb::serve {

/// Terminal state of a served request. Values are stable: the wire
/// protocol (serve/wire.hpp) carries them as a single byte.
enum class Status : std::uint8_t {
  kOk = 0,            ///< Served; Result::output is valid.
  kDeadlineExceeded,  ///< Expired before its batch was formed.
  kRejected,          ///< Queue full, submitted after shutdown, or the
                      ///< target model is not registered (gateway).
  kInternalError,     ///< The batch handler threw (callback submissions
                      ///< only -- future submissions carry the exception).
  kInvalidArgument,   ///< Malformed request (wire frontend decode).
};

/// Lower-case wire/log name of a Status ("ok", "deadline_exceeded", ...).
[[nodiscard]] const char* to_string(Status s);

/// What a submitted request's future resolves to.
struct Result {
  Status status = Status::kRejected;  ///< Terminal state.
  bnn::Tensor output;        ///< Valid only when status == kOk.
  double queue_us = 0.0;     ///< Submit -> batch formation, microseconds.
  double total_us = 0.0;     ///< Submit -> promise fulfilled, microseconds.
  std::size_t batch_size = 0;  ///< Live requests in the batch served with.

  /// True when the request was served (status == kOk).
  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// A batch executor: maps inputs[i] -> outputs[i] using `pool` for
/// intra-batch parallelism. Must be safe to call concurrently from several
/// worker threads (the Network handler is: const net + re-entrant pool;
/// serve::make_mapped_handler builds one from any map::MappedExecutor).
using BatchHandler = std::function<std::vector<bnn::Tensor>(
    std::span<const bnn::Tensor> inputs, ThreadPool& pool)>;

/// Completion callback alternative to the future API: invoked exactly once
/// per request with its terminal Result -- from a worker thread (served /
/// expired / drained), or inline from submit_async when the request is
/// rejected on admission. Handler exceptions surface as kInternalError
/// (a callback has no exception channel). Keep callbacks cheap and never
/// let them throw: they run on worker threads, where an escaping
/// exception terminates the process. This is the hook the gateway's wire
/// frontend uses to write responses back to sockets.
using Completion = std::function<void(Result)>;

/// Tuning knobs of the dynamic-batching policy and the worker fleet.
struct ServerConfig {
  /// Batch closes as soon as it holds max_batch live requests...
  std::size_t max_batch = 64;
  /// ...or when the oldest member has waited this long. 0 disables
  /// coalescing (serve singly) -- the no-batching baseline.
  std::uint64_t batching_window_us = 1000;
  /// Worker threads, each forming + executing batches independently.
  std::size_t workers = 2;
  /// Shared pool concurrency for intra-batch fan-out (0 = EB_THREADS /
  /// hardware concurrency, 1 = inline).
  std::size_t pool_threads = 1;
  /// submit() beyond this queue depth completes with kRejected
  /// (backpressure instead of unbounded memory growth).
  std::size_t queue_capacity = 65536;
  /// Deadline applied to submit(Tensor) without an explicit one; 0 = none.
  std::uint64_t default_deadline_us = 0;
  /// External-queue hook: invoked (outside the queue lock, from a worker
  /// thread) every time a batch is popped and queue capacity frees up.
  /// serve::Gateway uses it to top a shallow server queue back up from its
  /// weighted admission queues without polling. Leave empty when unused.
  std::function<void()> on_dequeue;
  /// Time source for enqueue stamps, deadlines and batching-window waits.
  /// nullptr = eb::Clock::real(). Tests inject an eb::VirtualClock here to
  /// drive window expiry and deadline gates without wall-clock sleeps; the
  /// clock must outlive the server.
  Clock* clock = nullptr;
};

/// The request queue + dynamic batcher + worker fleet.
class Server {
 public:
  /// Serves net.forward bit-exactly via per-worker BatchRunners.
  Server(const bnn::Network& net, ServerConfig cfg = {});
  /// Serves an arbitrary batch function (e.g. a mapped-crossbar executor
  /// wrapped by serve::make_mapped_handler).
  Server(BatchHandler handler, ServerConfig cfg = {});
  /// As above, but all intra-batch work runs on `shared_pool` instead of a
  /// pool this server owns (cfg.pool_threads is ignored). The pool must
  /// outlive the server. serve::Gateway hosts every registered model's
  /// server on one such pool.
  Server(const bnn::Network& net, ThreadPool& shared_pool,
         ServerConfig cfg = {});
  /// Shared-pool custom-handler mode; see above.
  Server(BatchHandler handler, ThreadPool& shared_pool,
         ServerConfig cfg = {});
  /// Graceful: shutdown() if still running.
  ~Server();

  Server(const Server&) = delete;             ///< Owns threads: not copyable.
  Server& operator=(const Server&) = delete;  ///< Owns threads: not copyable.

  /// Enqueue one request under the default deadline. Always returns a
  /// future that will be fulfilled: kOk with the output,
  /// kDeadlineExceeded, or kRejected.
  std::future<Result> submit(bnn::Tensor input);
  /// Enqueue one request with an explicit deadline (microseconds from
  /// submission; 0 = none).
  std::future<Result> submit(bnn::Tensor input, std::uint64_t deadline_us);
  /// Callback flavor of submit: `done` is invoked exactly once with the
  /// terminal Result (inline when rejected on admission, from a worker
  /// thread otherwise). Handler exceptions become kInternalError.
  void submit_async(bnn::Tensor input, std::uint64_t deadline_us,
                    Completion done);

  /// Stop admissions, serve everything already queued, join workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Consistent cut of the serving counters and latency distributions.
  [[nodiscard]] MetricsSnapshot metrics() const;
  /// Requests currently queued (excludes in-flight batches).
  [[nodiscard]] std::size_t queue_depth() const;
  /// Configuration the server was built with.
  [[nodiscard]] const ServerConfig& config() const { return cfg_; }
  /// The intra-batch pool (owned, or the shared pool passed at
  /// construction); mapped handlers run on it.
  [[nodiscard]] ThreadPool& pool() { return *pool_; }

 private:
  struct Pending {
    bnn::Tensor input;
    std::promise<Result> promise;
    Completion done;  // callback mode when set; promise mode otherwise
    Clock::time_point enqueue;
    Clock::time_point deadline;  // Clock::time_point::max() = none
  };

  void validate_config() const;
  // The injected time source (cfg_.clock or the real clock).
  [[nodiscard]] Clock& clk() const {
    return cfg_.clock != nullptr ? *cfg_.clock : Clock::real();
  }
  void start_workers();
  static void fulfil(Pending& r, Result res);
  void worker_loop(std::size_t worker_idx);
  // Pops one batch under the dynamic-batching policy. Returns false when
  // draining and the queue is empty (worker exits).
  bool form_batch(std::vector<Pending>& batch);
  void serve_batch(std::size_t worker_idx, std::vector<Pending> batch);
  std::future<Result> enqueue(bnn::Tensor input, std::uint64_t deadline_us,
                              Completion done, bool want_future);

  ServerConfig cfg_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null in shared-pool mode
  ThreadPool* pool_;                        // owned_pool_ or the shared one
  BatchHandler handler_;
  // Network mode: one runner per worker, all sharing pool_. Empty in
  // custom-handler mode.
  std::vector<std::unique_ptr<bnn::BatchRunner>> runners_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;
  std::mutex join_mu_;  // serializes shutdown(); cannot hold mu_ across join
  bool joined_ = false;

  Metrics metrics_;
};

}  // namespace eb::serve
