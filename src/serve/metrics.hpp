/// \file
/// \brief Serving metrics: the counters and distributions a
/// latency-budgeted serving layer has to expose to be tunable.
///
/// serve::Server records one event per request (submitted / completed /
/// deadline_exceeded / rejected) and one per dispatched batch; snapshot()
/// folds them into the numbers the load bench and the CI perf gate consume:
/// latency percentiles (p50/p95/p99 by nearest-rank over every completed
/// request -- serving benches are small enough that keeping all samples
/// beats a sketch), queue-depth gauge + high-water mark, a batch-size
/// histogram (the direct readout of the dynamic-batching policy: a spike at
/// max_batch means the window never expires, a spike at 1 means it always
/// does), and sustained throughput. docs/SERVING.md walks through every
/// field.
///
/// Metrics is internally locked: the Server's worker threads and submit()
/// callers record concurrently, and snapshot() can be taken from any thread
/// mid-flight (it sees a consistent cut).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace eb::serve {

/// Nearest-rank percentile (pct in [0, 100]) of an unsorted sample set.
/// Sorts a copy; empty input -> 0. The rank is clamped to [1, n] with a
/// small epsilon against binary-float round-up, so every pct of a
/// single-sample window returns that sample (never an out-of-range
/// rank). Exposed for tests and the load benches.
[[nodiscard]] double percentile(std::vector<double> xs, double pct);

/// Consistent cut of everything a Server recorded, ready to print or gate
/// on. Counter invariant: submitted == completed + deadline_exceeded +
/// in-flight; rejected submissions (queue full / after shutdown) are
/// counted separately and never enter the queue.
struct MetricsSnapshot {
  std::size_t submitted = 0;          ///< Accepted into the queue.
  std::size_t completed = 0;          ///< Served with kOk.
  std::size_t deadline_exceeded = 0;  ///< Expired at batch formation.
  std::size_t rejected = 0;           ///< Backpressured / post-shutdown.
  std::size_t batches = 0;            ///< Batches dispatched.

  /// Queue depth at snapshot time (owned by the Server -- it knows the
  /// queue; Metrics itself tracks only the high-water mark at submit).
  std::size_t queue_depth = 0;
  std::size_t peak_queue_depth = 0;  ///< High-water mark seen at submit.

  double latency_mean_us = 0.0;  ///< Mean submit -> completion latency.
  double latency_p50_us = 0.0;   ///< Median latency, microseconds.
  double latency_p95_us = 0.0;   ///< 95th percentile latency.
  double latency_p99_us = 0.0;   ///< 99th percentile latency.
  double latency_max_us = 0.0;   ///< Worst completed-request latency.

  /// batch_size_hist[k] = dispatched batches that served exactly k live
  /// requests (index 0 unused). Sized to the largest batch seen.
  std::vector<std::size_t> batch_size_hist;
  double mean_batch_size = 0.0;  ///< Mean live requests per batch.

  double wall_s = 0.0;  ///< Wall time since the Metrics epoch (Server construction).
  double throughput_rps = 0.0;  ///< completed / wall_s.

  /// One-line human-readable digest.
  [[nodiscard]] std::string summary() const;
};

/// Internally-locked event recorder behind Server::metrics().
class Metrics {
 public:
  /// Starts the wall-clock epoch throughput is measured against.
  Metrics();

  /// One accepted request; `queue_depth_after` updates the high-water mark.
  void record_submitted(std::size_t queue_depth_after);
  /// One rejected submission (backpressure or post-shutdown).
  void record_rejected();
  /// One completed request: latency from submit to promise fulfil.
  void record_completed(double latency_us);
  /// One request that expired at batch formation.
  void record_deadline_exceeded();
  /// One dispatched batch of `live` requests (after deadline filtering).
  void record_batch(std::size_t live);

  /// Consistent cut of everything recorded so far. `queue_depth` is the
  /// caller-observed current depth (the Server passes its queue size).
  [[nodiscard]] MetricsSnapshot snapshot(std::size_t queue_depth) const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t deadline_exceeded_ = 0;
  std::size_t rejected_ = 0;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::vector<double> latencies_us_;
  std::vector<std::size_t> batch_size_hist_;
};

}  // namespace eb::serve
