// Serving metrics: the counters and distributions a latency-budgeted
// serving layer has to expose to be tunable.
//
// serve::Server records one event per request (submitted / completed /
// deadline_exceeded / rejected) and one per dispatched batch; snapshot()
// folds them into the numbers the load bench and the CI perf gate consume:
// latency percentiles (p50/p95/p99 by nearest-rank over every completed
// request -- serving benches are small enough that keeping all samples
// beats a sketch), queue-depth gauge + high-water mark, a batch-size
// histogram (the direct readout of the dynamic-batching policy: a spike at
// max_batch means the window never expires, a spike at 1 means it always
// does), and sustained throughput.
//
// Metrics is internally locked: the Server's worker threads and submit()
// callers record concurrently, and snapshot() can be taken from any thread
// mid-flight (it sees a consistent cut).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace eb::serve {

// Nearest-rank percentile (pct in [0, 100]) of an unsorted sample set.
// Sorts a copy; empty input -> 0. Exposed for tests and the load bench.
[[nodiscard]] double percentile(std::vector<double> xs, double pct);

struct MetricsSnapshot {
  // Request counters. submitted == completed + deadline_exceeded +
  // in-flight; rejected submissions (queue full / after shutdown) are
  // counted separately and never enter the queue.
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t rejected = 0;
  std::size_t batches = 0;

  // Queue depth at snapshot time is owned by the Server (it knows the
  // queue); Metrics tracks the high-water mark seen at submit.
  std::size_t queue_depth = 0;
  std::size_t peak_queue_depth = 0;

  // Submit -> completion latency of completed requests, microseconds.
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  // batch_size_hist[k] = dispatched batches that served exactly k live
  // requests (index 0 unused). Sized to the largest batch seen.
  std::vector<std::size_t> batch_size_hist;
  double mean_batch_size = 0.0;

  // Wall time since the Metrics epoch (Server construction) and the
  // completion rate over it.
  double wall_s = 0.0;
  double throughput_rps = 0.0;

  [[nodiscard]] std::string summary() const;
};

class Metrics {
 public:
  Metrics();

  void record_submitted(std::size_t queue_depth_after);
  void record_rejected();
  // One completed request: status latency from submit to promise fulfil.
  void record_completed(double latency_us);
  void record_deadline_exceeded();
  // One dispatched batch of `live` requests (after deadline filtering).
  void record_batch(std::size_t live);

  // Consistent cut of everything recorded so far. `queue_depth` is the
  // caller-observed current depth (the Server passes its queue size).
  [[nodiscard]] MetricsSnapshot snapshot(std::size_t queue_depth) const;

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t deadline_exceeded_ = 0;
  std::size_t rejected_ = 0;
  std::size_t batches_ = 0;
  std::size_t batched_requests_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::vector<double> latencies_us_;
  std::vector<std::size_t> batch_size_hist_;
};

}  // namespace eb::serve
