// gateway_replica: one runnable gateway replica process.
//
// Serves the demo model pair ("mlp-a" 128->128->10, "mlp-b" 96->96->8,
// both built deterministically from RngStream(seed)) behind a Gateway +
// TcpFrontend, so N spawned copies with the same seed are byte-identical
// replicas -- the unit serve::Balancer fans out over, and what the
// fork/exec integration test (tests/test_balancer.cpp) and
// bench/balancer_load spawn.
//
// Flags (key=value):
//   port=N        TCP port; 0 (default) picks an ephemeral port.
//   port_file=P   Write the bound port to P (atomic tmp+rename), so a
//                 spawner using port=0 can discover it without races.
//   seed=N        Model-weight seed (default 17; all replicas must match).
//   threads=N     Gateway pool threads (0 = EB_THREADS / hw concurrency).
//   event_loops=N Frontend epoll loops (default 1).
//   model_dir=D   Serve every *.ebm file in D (registered under its file
//                 stem, sorted by name so replicas agree) and accept
//                 wire type-7 load ops against D. A missing or
//                 .ebm-empty directory is a loud startup error naming D.
//   seed_models=B Also register the demo seed pair (default: 1 without
//                 model_dir -- the historical behavior -- 0 with it).
//
// Prints "LISTENING <port>" on stdout once serving, then waits for
// SIGTERM/SIGINT and shuts down gracefully (draining the gateway).

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "bnn/model_zoo.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "serve/gateway.hpp"
#include "serve/tcp_frontend.hpp"

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace {

// Atomic port publication: write to a temp file, then rename into
// place, so a polling spawner never reads a half-written file.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  eb::Config cfg;
  try {
    cfg = eb::Config::from_args(
        argc, argv,
        {"port", "port_file", "seed", "threads", "event_loops", "model_dir",
         "seed_models"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gateway_replica: %s\n", e.what());
    return 2;
  }

  // Block the shutdown signals before any thread starts, so every
  // gateway/frontend thread inherits the mask and sigwait() below is
  // the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
#ifdef __linux__
  // Die with the spawner: an integration test or bench that crashes
  // must not leak orphan replicas into the CI runner.
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif

  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 17));
  eb::RngStream model_rng(seed);
  // Construction order matters: both nets draw from one stream, so any
  // in-process reference must build them in this exact order.
  const eb::bnn::Network net_a =
      eb::bnn::build_mlp("replica-mlp-a", {128, 128, 10}, model_rng);
  const eb::bnn::Network net_b =
      eb::bnn::build_mlp("replica-mlp-b", {96, 96, 8}, model_rng);

  const std::string model_dir = cfg.get_string("model_dir", "");
  const bool seed_models =
      cfg.get_int("seed_models", model_dir.empty() ? 1 : 0) != 0;

  eb::serve::GatewayConfig gcfg;
  gcfg.pool_threads =
      static_cast<std::size_t>(cfg.get_int("threads", 0));
  gcfg.model_dir = model_dir;
  eb::serve::Gateway gateway(gcfg);
  if (seed_models) {
    gateway.register_model("mlp-a", net_a);
    gateway.register_model("mlp-b", net_b);
  }
  if (!model_dir.empty()) {
    // Replicas must agree on the registry, so the directory scan is
    // sorted by file name; each model serves under its file stem.
    std::vector<std::string> ebm_files;
    std::error_code ec;
    try {
      for (const auto& entry :
           std::filesystem::directory_iterator(model_dir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".ebm") {
          ebm_files.push_back(entry.path().filename().string());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "gateway_replica: model_dir '%s' cannot be read: %s\n",
                   model_dir.c_str(), e.what());
      return 2;
    }
    if (ec) {
      std::fprintf(stderr,
                   "gateway_replica: model_dir '%s' cannot be read: %s\n",
                   model_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (ebm_files.empty()) {
      std::fprintf(
          stderr,
          "gateway_replica: model_dir '%s' contains no .ebm files\n",
          model_dir.c_str());
      return 2;
    }
    std::sort(ebm_files.begin(), ebm_files.end());
    for (const auto& file : ebm_files) {
      const std::string id = file.substr(0, file.size() - 4);  // drop .ebm
      try {
        gateway.load_model(id, file);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "gateway_replica: loading '%s/%s' failed: %s\n",
                     model_dir.c_str(), file.c_str(), e.what());
        return 2;
      }
    }
  }

  eb::serve::TcpFrontendConfig fcfg;
  fcfg.port = static_cast<std::uint16_t>(cfg.get_int("port", 0));
  fcfg.event_loops =
      static_cast<std::size_t>(cfg.get_int("event_loops", 1));
  eb::serve::TcpFrontend frontend(gateway, fcfg);

  const std::string port_file = cfg.get_string("port_file", "");
  if (!port_file.empty()) {
    write_port_file(port_file, frontend.port());
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(frontend.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("SHUTDOWN signal=%d\n", sig);
  std::fflush(stdout);
  frontend.shutdown();
  gateway.shutdown();
  return 0;
}
