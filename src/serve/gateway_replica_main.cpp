// gateway_replica: one runnable gateway replica process.
//
// Serves the demo model pair ("mlp-a" 128->128->10, "mlp-b" 96->96->8,
// both built deterministically from RngStream(seed)) behind a Gateway +
// TcpFrontend, so N spawned copies with the same seed are byte-identical
// replicas -- the unit serve::Balancer fans out over, and what the
// fork/exec integration test (tests/test_balancer.cpp) and
// bench/balancer_load spawn.
//
// Flags (key=value):
//   port=N        TCP port; 0 (default) picks an ephemeral port.
//   port_file=P   Write the bound port to P (atomic tmp+rename), so a
//                 spawner using port=0 can discover it without races.
//   seed=N        Model-weight seed (default 17; all replicas must match).
//   threads=N     Gateway pool threads (0 = EB_THREADS / hw concurrency).
//   event_loops=N Frontend epoll loops (default 1).
//
// Prints "LISTENING <port>" on stdout once serving, then waits for
// SIGTERM/SIGINT and shuts down gracefully (draining the gateway).

#include <csignal>
#include <cstdio>
#include <string>

#include "bnn/model_zoo.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "serve/gateway.hpp"
#include "serve/tcp_frontend.hpp"

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace {

// Atomic port publication: write to a temp file, then rename into
// place, so a polling spawner never reads a half-written file.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  std::rename(tmp.c_str(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  eb::Config cfg;
  try {
    cfg = eb::Config::from_args(
        argc, argv, {"port", "port_file", "seed", "threads", "event_loops"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gateway_replica: %s\n", e.what());
    return 2;
  }

  // Block the shutdown signals before any thread starts, so every
  // gateway/frontend thread inherits the mask and sigwait() below is
  // the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
#ifdef __linux__
  // Die with the spawner: an integration test or bench that crashes
  // must not leak orphan replicas into the CI runner.
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif

  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 17));
  eb::RngStream model_rng(seed);
  // Construction order matters: both nets draw from one stream, so any
  // in-process reference must build them in this exact order.
  const eb::bnn::Network net_a =
      eb::bnn::build_mlp("replica-mlp-a", {128, 128, 10}, model_rng);
  const eb::bnn::Network net_b =
      eb::bnn::build_mlp("replica-mlp-b", {96, 96, 8}, model_rng);

  eb::serve::GatewayConfig gcfg;
  gcfg.pool_threads =
      static_cast<std::size_t>(cfg.get_int("threads", 0));
  eb::serve::Gateway gateway(gcfg);
  gateway.register_model("mlp-a", net_a);
  gateway.register_model("mlp-b", net_b);

  eb::serve::TcpFrontendConfig fcfg;
  fcfg.port = static_cast<std::uint16_t>(cfg.get_int("port", 0));
  fcfg.event_loops =
      static_cast<std::size_t>(cfg.get_int("event_loops", 1));
  eb::serve::TcpFrontend frontend(gateway, fcfg);

  const std::string port_file = cfg.get_string("port_file", "");
  if (!port_file.empty()) {
    write_port_file(port_file, frontend.port());
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(frontend.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("SHUTDOWN signal=%d\n", sig);
  std::fflush(stdout);
  frontend.shutdown();
  gateway.shutdown();
  return 0;
}
