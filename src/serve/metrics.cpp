#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace eb::serve {

namespace {

// Nearest-rank index into a sorted sample set of size n (>= 1): the
// 1-based rank is ceil(pct/100 * n), clamped to [1, n]. The small epsilon
// counters binary-float round-up (e.g. 0.95 * 20 evaluating to
// 19.000000000000004, whose ceil would otherwise skip rank 19 for rank
// 20); the clamp makes every pct -- including p99 of a single-sample
// window -- land on a valid index instead of reading past the end.
std::size_t nearest_rank_index(std::size_t n, double pct) {
  const double rank =
      std::ceil(pct / 100.0 * static_cast<double>(n) - 1e-9);
  if (rank <= 1.0) {
    return 0;
  }
  return std::min(n - 1, static_cast<std::size_t>(rank) - 1);
}

}  // namespace

double percentile(std::vector<double> xs, double pct) {
  EB_REQUIRE(pct >= 0.0 && pct <= 100.0, "percentile must be in [0, 100]");
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  return xs[nearest_rank_index(xs.size(), pct)];
}

std::string MetricsSnapshot::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "served %zu/%zu ok (%zu deadline, %zu rejected) in %zu "
                "batches (mean %.1f) | lat us p50 %.0f p95 %.0f p99 %.0f | "
                "%.0f req/s | depth %zu (peak %zu)",
                completed, submitted, deadline_exceeded, rejected, batches,
                mean_batch_size, latency_p50_us, latency_p95_us,
                latency_p99_us, throughput_rps, queue_depth,
                peak_queue_depth);
  return buf;
}

Metrics::Metrics() : epoch_(std::chrono::steady_clock::now()) {}

void Metrics::record_submitted(std::size_t queue_depth_after) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  peak_queue_depth_ = std::max(peak_queue_depth_, queue_depth_after);
}

void Metrics::record_rejected() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void Metrics::record_completed(double latency_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  latencies_us_.push_back(latency_us);
}

void Metrics::record_deadline_exceeded() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++deadline_exceeded_;
}

void Metrics::record_batch(std::size_t live) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_requests_ += live;
  if (batch_size_hist_.size() <= live) {
    batch_size_hist_.resize(live + 1, 0);
  }
  ++batch_size_hist_[live];
}

MetricsSnapshot Metrics::snapshot(std::size_t queue_depth) const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.deadline_exceeded = deadline_exceeded_;
  s.rejected = rejected_;
  s.batches = batches_;
  s.queue_depth = queue_depth;
  s.peak_queue_depth = peak_queue_depth_;
  s.batch_size_hist = batch_size_hist_;
  if (batches_ > 0) {
    s.mean_batch_size = static_cast<double>(batched_requests_) /
                        static_cast<double>(batches_);
  }
  if (!latencies_us_.empty()) {
    // One sorted copy serves all three percentiles (snapshot holds mu_,
    // so recorders stall while this runs -- keep it to a single sort).
    std::vector<double> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = [&](double pct) {
      return sorted[nearest_rank_index(sorted.size(), pct)];
    };
    double sum = 0.0;
    for (const double x : sorted) {
      sum += x;
    }
    s.latency_mean_us = sum / static_cast<double>(sorted.size());
    s.latency_max_us = sorted.back();
    s.latency_p50_us = rank(50.0);
    s.latency_p95_us = rank(95.0);
    s.latency_p99_us = rank(99.0);
  }
  const auto now = std::chrono::steady_clock::now();
  s.wall_s = std::chrono::duration<double>(now - epoch_).count();
  s.throughput_rps =
      s.wall_s > 0.0 ? static_cast<double>(completed_) / s.wall_s : 0.0;
  return s;
}

}  // namespace eb::serve
