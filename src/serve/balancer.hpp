/// \file
/// \brief Shared-nothing scale-out tier: a Balancer fronts N gateway
/// replica processes over the framed wire protocol and routes each
/// request to the least loaded of two sampled replicas.
///
/// Topology (every box its own process, every edge the wire protocol):
///
///     clients ──┐                      ┌─> replica 0 (Gateway+TcpFrontend)
///     clients ──┼─> Balancer ──────────┼─> replica 1 (Gateway+TcpFrontend)
///     clients ──┘   (WireService       └─> replica 2 (Gateway+TcpFrontend)
///                    behind its own
///                    TcpFrontend)
///
/// Routing: power-of-two-choices -- sample two live replicas, score each
/// by `in-flight requests + admission queue depth` (the queue depth
/// rides the periodic type-6 stats responses each ReplicaClient polls),
/// send to the lower score. With one live replica the choice is forced;
/// with none the request fails kRejected immediately ("failed loudly" --
/// the balancer never buffers requests for a future replica).
///
/// Health + retries: a replica is dead while its ReplicaClient is
/// disconnected (ping timeout or connection loss -- see
/// serve/replica_client.hpp). A request in flight on a dying replica is
/// retried on another live replica, preferring ones it has not tried,
/// up to `max_attempts` total sends. The admission-time shape gate runs
/// *in the balancer* against the per-model input_size learned from
/// stats frames, so a malformed request fails exactly once with
/// kInvalidArgument instead of burning a retry per replica.
///
/// The Balancer implements WireService, so `TcpFrontend front(balancer)`
/// exposes the whole tier over the same wire protocol the replicas
/// speak -- including ping and aggregated stats.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/replica_client.hpp"
#include "serve/tcp_frontend.hpp"

namespace eb::serve {

/// Balancer knobs.
struct BalancerConfig {
  /// The replica fleet (one pipelined connection each).
  std::vector<ReplicaAddress> replicas;
  /// Per-replica connection knobs (`address` is overwritten per replica).
  ReplicaClientConfig client;
  /// Total sends per request, first try included. 0 = one per replica.
  std::size_t max_attempts = 0;
  /// Seed of the power-of-two-choices sampler (deterministic routing
  /// for a fixed seed + arrival order).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// How long handle_model_admin waits for the fleet's type-7 acks
  /// before reporting the stragglers as failures.
  std::uint32_t admin_timeout_ms = 5000;
};

/// One replica's slice of a BalancerSnapshot.
struct ReplicaSnapshot {
  ReplicaAddress address;       ///< Where the replica listens.
  bool alive = false;           ///< Connection currently healthy.
  std::size_t in_flight = 0;    ///< Requests awaiting this replica.
  std::uint64_t queue_depth = 0;  ///< Last reported admission backlog.
  std::size_t requests = 0;     ///< Frames sent over the lifetime.
  std::size_t deaths = 0;       ///< Connection teardowns.
};

/// Aggregated balancer counters + per-replica state.
struct BalancerSnapshot {
  std::size_t submitted = 0;    ///< Requests accepted by submit().
  std::size_t completed = 0;    ///< Requests finished with a Result.
  std::size_t rejected = 0;     ///< kRejected terminals (no live replica
                                ///< or attempts exhausted).
  std::size_t shape_gated = 0;  ///< kInvalidArgument at the balancer's
                                ///< own admission gate (never retried).
  std::size_t retries = 0;      ///< Re-sends after a replica death.
  std::vector<ReplicaSnapshot> replicas;  ///< Fleet state, config order.
};

/// The scale-out tier. Thread-safe; completions run on ReplicaClient
/// I/O threads (or inline for admission-time failures).
class Balancer : public WireService {
 public:
  /// Dials every replica and starts routing. Replicas may come up
  /// later; until one is connected, requests fail kRejected.
  explicit Balancer(BalancerConfig cfg);
  /// shutdown() if still running.
  ~Balancer() override;

  Balancer(const Balancer&) = delete;             ///< Owns clients.
  Balancer& operator=(const Balancer&) = delete;  ///< Owns clients.

  /// Future flavor of submit_async.
  std::future<Result> submit(const std::string& model, bnn::Tensor input,
                             DeadlineClass cls = DeadlineClass::kInteractive,
                             std::uint64_t deadline_us = 0);

  /// Routes one request (see class comment for the policy). `done` runs
  /// exactly once -- inline when gated/rejected at admission, on a
  /// ReplicaClient I/O thread otherwise. WireService implementation, so
  /// a TcpFrontend can front the balancer itself.
  void submit_async(const std::string& model, bnn::Tensor input,
                    DeadlineClass cls, std::uint64_t deadline_us,
                    Completion done) override;

  /// Aggregates the balancer's own counters plus every replica's last
  /// stats digest (summed counters; the model list is the union with
  /// per-model completed/queue_depth summed across replicas).
  void fill_stats(wire::StatsFrame& out) override;

  /// Fleet-wide model administration: fans the type-7 op out to every
  /// live replica, blocks (up to cfg.admin_timeout_ms) for their acks
  /// and aggregates -- kOk only when every reached replica succeeded,
  /// with the union of the replicas' post-op model lists. A fleet with
  /// no live replica fails kRejected; a replica death or timeout during
  /// the op reports kInternalError. Runs on the caller's thread (a
  /// frontend loop thread when the balancer is wire-fronted), never on
  /// a ReplicaClient I/O thread.
  wire::ModelAdminFrame handle_model_admin(
      const wire::ModelAdminFrame& req) override;

  /// Replicas with a currently-healthy connection.
  [[nodiscard]] std::size_t alive_replicas() const;
  /// The input_size learned for `model` from replica stats (0 until a
  /// stats response named the model, or when the model is unchecked).
  [[nodiscard]] std::size_t known_input_size(const std::string& model) const;
  /// Blocks until `min_alive` replicas are connected and at least one
  /// stats response arrived from each connected one, or `timeout_ms`
  /// elapsed. Returns whether the condition was met. Testing/bench
  /// convenience (spawned replicas come up asynchronously).
  bool wait_ready(std::size_t min_alive, std::uint32_t timeout_ms);
  /// Balancer + per-replica counters.
  [[nodiscard]] BalancerSnapshot metrics() const;

  /// Stops routing: new submissions fail kRejected, every connection is
  /// torn down (in-flight requests fail kRejected through the retry
  /// path finding no live replica). Idempotent.
  void shutdown();

 private:
  /// One routed request's retry state, shared between the response and
  /// death handlers of its current attempt.
  struct Flight;

  void dispatch(const std::shared_ptr<Flight>& flight);
  int pick_replica(const std::vector<bool>& tried);
  void finish(const std::shared_ptr<Flight>& flight, Result res);

  BalancerConfig cfg_;
  std::vector<std::unique_ptr<ReplicaClient>> clients_;

  mutable std::mutex mu_;  // rng + draining flag
  RngStream rng_;
  bool draining_ = false;

  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> shape_gated_{0};
  std::atomic<std::size_t> retries_{0};

  std::mutex join_mu_;  // serializes shutdown()
  bool joined_ = false;
};

}  // namespace eb::serve
