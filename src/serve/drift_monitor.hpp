/// \file
/// \brief Canary-driven online recalibration of drifting mapped models.
///
/// A PCM crossbar's conductances decay after programming (device-layer
/// dev::DriftModel), so a mapped model that served bit-exact popcounts at
/// deploy time silently degrades as it ages. The DriftMonitor closes the
/// loop at serving time:
///
///     every interval_us (on the injected eb::Clock):
///       1. age the model's crossbars -- exec->set_drift(model, t_s, fork)
///          where t_s = clock time since the last (re)programming
///       2. submit the canary inputs through *normal gateway admission*
///          (same queues, same deadline classes as tenant traffic)
///       3. score the answers against the packed gold popcounts
///          (bnn::xnor_popcount_rows ground truth, element-exact match)
///       4. below the accuracy floor: *rewrite* -- restore pristine
///          conductances (re-program every device), restart the drift
///          epoch at t = 0 and advance the fork generation
///
/// The rewrite is an in-place swap beneath the registry entry: the model
/// stays registered, its server keeps draining, and in-flight requests see
/// either the old or the new factor table per crossbar -- never a torn
/// mix, never a dropped future. Canary rounds and rewrites are reported
/// to the gateway (GatewaySnapshot::canaries_sent / canary_failures /
/// rewrites / rewrite_us_last) and travel the wire stats frame, so a
/// balancer sees replica health decay and recover.
///
/// Time discipline: drift ages and canary cadence follow the injected
/// clock (a VirtualClock compresses hours of aging into milliseconds of
/// test time); only rewrite_us_last is measured on the real clock, since
/// a rewrite consumes real work, not simulated time. When driving the
/// monitor from a VirtualClock, keep advancing virtual time until an
/// epoch completes -- canary batches need the model server's batching
/// window to expire, which is also virtual-clock driven.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bnn/tensor.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "device/drift.hpp"
#include "mapping/executor.hpp"
#include "serve/gateway.hpp"
#include "serve/router.hpp"

namespace eb::serve {

/// One canary probe: a fixed input plus its packed gold reference
/// (xnor_popcount_rows of the model's weights against the input bits).
struct Canary {
  bnn::Tensor input;              ///< Request tensor (executor dims().m wide).
  std::vector<std::size_t> gold;  ///< Expected popcount per output element.
};

/// Tuning knobs of the canary/recalibration loop.
struct DriftMonitorConfig {
  /// Registered gateway model id the canaries target.
  std::string model;
  /// The model's executor (the same shared_ptr the registration holds);
  /// the monitor ages and rewrites its crossbars in place.
  std::shared_ptr<const map::MappedExecutor> exec;
  /// Device drift law imposed each epoch.
  dev::DriftParams drift = dev::DriftParams::realistic();
  /// Canary probes; at least one is required.
  std::vector<Canary> canaries;
  /// Canary cadence on the injected clock, microseconds.
  std::uint64_t interval_us = 100000;
  /// Mean element-exact-match fraction below which a rewrite triggers.
  double min_accuracy = 0.99;
  /// Deadline for canary submissions (0 = class default / none).
  std::uint64_t canary_deadline_us = 0;
  /// Admission class canaries ride in (best-effort: probes must not
  /// displace interactive tenant traffic under saturation).
  DeadlineClass canary_class = DeadlineClass::kBestEffort;
  /// Base seed of the drift-table stream family; generation g forks
  /// base.fork(g, 0, 0) so every rewrite re-programs onto fresh
  /// deterministic device exponents.
  std::uint64_t seed = 0xD41F7ULL;
  /// Time source for drift ages and canary cadence. nullptr =
  /// eb::Clock::real(); tests inject the same VirtualClock the gateway
  /// runs on. Must outlive the monitor.
  Clock* clock = nullptr;
};

/// The serving-time drift watchdog: one background thread per monitored
/// model, probing through the gateway's front door and rewriting the
/// crossbars when the canaries say the array has aged out of spec.
class DriftMonitor {
 public:
  /// Starts monitoring immediately; first epoch fires interval_us after
  /// construction. The gateway, executor, and clock must outlive the
  /// monitor; stop the monitor before shutting the gateway down.
  DriftMonitor(Gateway& gateway, DriftMonitorConfig cfg);
  /// stop() if still running.
  ~DriftMonitor();

  DriftMonitor(const DriftMonitor&) = delete;             ///< Owns a thread.
  DriftMonitor& operator=(const DriftMonitor&) = delete;  ///< Owns a thread.

  /// Joins the monitor thread after its current epoch (if any) finishes.
  /// Idempotent.
  void stop();

  /// Completed canary epochs (drift aged + canaries scored).
  [[nodiscard]] std::size_t epochs() const;
  /// Rewrites this monitor performed.
  [[nodiscard]] std::size_t rewrites() const;
  /// Mean element-exact-match fraction of the most recent epoch's
  /// canaries (1.0 before the first epoch completes).
  [[nodiscard]] double last_accuracy() const;
  /// Current programming generation (bumps on every rewrite).
  [[nodiscard]] std::uint64_t generation() const;

 private:
  [[nodiscard]] Clock& clk() const {
    return cfg_.clock != nullptr ? *cfg_.clock : Clock::real();
  }
  void loop();
  // One epoch: age the crossbars, probe, score, maybe rewrite.
  void tick();
  // Mean element-exact-match fraction across all canaries (a non-ok
  // canary result scores 0: a probe the model cannot answer in time is
  // indistinguishable from a wrong answer to the recalibration policy).
  [[nodiscard]] double run_canaries();
  void rewrite();

  Gateway& gateway_;
  DriftMonitorConfig cfg_;
  RngStream base_;
  dev::DriftModel model_;

  Clock::time_point programmed_at_;  // start of the current drift epoch

  std::atomic<std::size_t> epochs_{0};
  std::atomic<std::size_t> rewrites_{0};
  std::atomic<double> last_accuracy_{1.0};
  std::atomic<std::uint64_t> generation_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace eb::serve
