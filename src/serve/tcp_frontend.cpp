#include "serve/tcp_frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "serve/wire.hpp"

namespace eb::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Per-EPOLLIN read budget: level-triggered epoll re-notifies, so one
/// fire-hose client cannot monopolize its loop.
constexpr std::size_t kMaxReadPerEvent = 1 << 20;
/// Bytes gathered into the staging write buffer per refill.
constexpr std::size_t kFlushChunk = 256 * 1024;
/// Periodic maintenance cadence (stall kills, eof-idle closes).
constexpr auto kScanPeriod = std::chrono::milliseconds(100);

}  // namespace

wire::ModelAdminFrame WireService::handle_model_admin(
    const wire::ModelAdminFrame& req) {
  wire::ModelAdminFrame resp;
  resp.response = true;
  resp.request_id = req.request_id;
  resp.op = req.op;
  resp.model_id = req.model_id;
  resp.status = Status::kInvalidArgument;
  resp.message = "model administration is not supported by this service";
  return resp;
}

void GatewayWireService::submit_async(const std::string& model,
                                      bnn::Tensor input, DeadlineClass cls,
                                      std::uint64_t deadline_us,
                                      Completion done) {
  gateway_.submit_async(model, std::move(input), cls, deadline_us,
                        std::move(done));
}

void GatewayWireService::fill_stats(wire::StatsFrame& out) {
  const GatewaySnapshot s = gateway_.metrics();
  out.submitted = s.submitted;
  out.completed = s.completed;
  out.rejected = s.rejected;
  out.deadline_exceeded = s.deadline_exceeded;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    out.errors += s.errors[c];
    out.invalid += s.invalid[c];
    out.queue_depth += s.classes[c].queue_depth;
  }
  out.canaries_sent = s.canaries_sent;
  out.canary_failures = s.canary_failures;
  out.rewrites = s.rewrites;
  out.rewrite_us_last = s.rewrite_us_last;
  out.models.reserve(s.models.size());
  for (const auto& m : s.models) {
    wire::StatsModel sm;
    sm.id = m.id;
    sm.input_size = m.input_size;
    sm.queue_depth = m.server.queue_depth;
    sm.completed = m.server.completed;
    out.models.push_back(std::move(sm));
  }
}

wire::ModelAdminFrame GatewayWireService::handle_model_admin(
    const wire::ModelAdminFrame& req) {
  wire::ModelAdminFrame resp;
  resp.response = true;
  resp.request_id = req.request_id;
  resp.op = req.op;
  resp.model_id = req.model_id;
  resp.status = Status::kOk;
  // A failed load/unload is the admin client's mistake (bad name, missing
  // or corrupt file, duplicate id): kInvalidArgument with the thrown
  // message, never a torn-down connection.
  try {
    switch (req.op) {
      case wire::ModelAdminOp::kLoad:
        gateway_.load_model(req.model_id, req.file);
        break;
      case wire::ModelAdminOp::kUnload:
        if (!gateway_.unregister_model(req.model_id)) {
          resp.status = Status::kInvalidArgument;
          resp.message = "no model '" + req.model_id + "' is registered";
        }
        break;
      case wire::ModelAdminOp::kList:
        break;
    }
  } catch (const std::exception& e) {
    resp.status = Status::kInvalidArgument;
    resp.message = e.what();
  }
  resp.models = gateway_.model_ids();
  return resp;
}

/// Stats + config shared with completion callbacks, which may outlive
/// the frontend object itself (a drained gateway fulfils them late).
/// All counters are relaxed atomics: the hot path (one increment per
/// frame on every loop and worker thread) must not serialize
/// connections on a mutex.
struct TcpFrontend::Shared {
  TcpFrontendConfig cfg;
  std::atomic<std::size_t> connections{0};
  std::atomic<std::size_t> open_conns{0};
  std::atomic<std::size_t> requests{0};
  std::atomic<std::size_t> responses{0};
  std::atomic<std::size_t> malformed{0};
  std::atomic<std::size_t> pings{0};
  std::atomic<std::size_t> stats_requests{0};
  std::atomic<std::size_t> admin_requests{0};
  std::atomic<std::size_t> batched_frames{0};
  std::atomic<std::size_t> chunked_responses{0};
  std::atomic<std::size_t> bytes_read{0};
  std::atomic<std::size_t> bytes_written{0};
  std::atomic<std::size_t> overflow_kills{0};
  std::atomic<std::size_t> stall_kills{0};
  std::atomic<std::size_t> dropped_responses{0};
};

/// Wakeup channel of one event loop, shared (via shared_ptr) with every
/// connection the loop owns so completion callbacks can reach the loop
/// even after the frontend is torn down. `stopped` flips under `mu` at
/// shutdown, after which notify() is a no-op -- the eventfd itself is
/// closed only by the destructor, i.e. when the last connection dies.
struct TcpFrontend::LoopShared {
  int wake_fd = -1;
  std::mutex mu;
  std::vector<std::weak_ptr<Connection>> arm_queue;
  bool stopped = false;

  ~LoopShared() {
    if (wake_fd >= 0) {
      ::close(wake_fd);
    }
  }

  /// Queues `conn` for the loop's attention and pokes the eventfd. The
  /// write happens under `mu` so it cannot race the fd's close.
  void notify(const std::weak_ptr<Connection>& conn) {
    const std::lock_guard<std::mutex> lock(mu);
    if (stopped) {
      return;
    }
    arm_queue.push_back(conn);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
};

/// One accepted socket. Reader-side state (`rbuf`, `rpos`, `reading`,
/// `close_after_flush`, `want_write`) is touched only by the owning
/// loop thread; writer-side state lives under `mu` because completion
/// callbacks append to the outbound queue from worker threads.
struct TcpFrontend::Connection
    : std::enable_shared_from_this<TcpFrontend::Connection> {
  int fd = -1;
  std::shared_ptr<LoopShared> loop;
  std::shared_ptr<Shared> shared;

  // -- owning-loop-thread only ----------------------------------------
  std::vector<std::uint8_t> rbuf;  ///< Reassembly buffer.
  std::size_t rpos = 0;            ///< Read cursor into rbuf.
  bool reading = true;             ///< EPOLLIN armed.
  bool close_after_flush = false;  ///< Fatal frame seen: drain then close.

  // -- capability latches / lifecycle flags ---------------------------
  std::atomic<bool> batch_ok{false};   ///< Client sent kFlagAcceptBatch.
  std::atomic<bool> stream_ok{false};  ///< Client sent kFlagAcceptStream.
  std::atomic<bool> read_eof{false};   ///< Peer half-closed its side.
  std::atomic<std::size_t> in_flight{0};  ///< Requests inside the gateway.

  // -- write side, under mu -------------------------------------------
  /// `body` entries are bare response bodies the flusher may coalesce
  /// into one type-3 batched frame; raw entries (error frames, chunk
  /// frames, plain responses) are sent verbatim.
  struct OutEntry {
    bool body = false;
    std::vector<std::uint8_t> bytes;
  };
  std::mutex mu;
  bool open = true;
  bool arm_requested = false;  ///< Already queued on the loop's eventfd.
  bool want_write = false;     ///< EPOLLOUT armed (loop thread writes).
  bool kill = false;           ///< Write-queue overflow: close asap.
  std::deque<OutEntry> outq;
  std::vector<std::uint8_t> wbuf;  ///< Staged bytes mid-send.
  std::size_t woff = 0;
  std::size_t out_bytes = 0;  ///< outq bytes + unsent wbuf bytes.
  Clock::time_point last_progress{};  ///< Last byte the socket took.

  /// Appends encoded entries to the outbound queue and wakes the owning
  /// loop when it is not already pending. Returns false once the
  /// connection is closed (the caller counts a dropped response).
  /// All entries land under one lock, so a chunked response's frames
  /// stay contiguous even with concurrent completions on the socket.
  bool enqueue(std::vector<OutEntry> entries) {
    bool need_notify = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!open) {
        return false;
      }
      const bool was_idle = out_bytes == 0;
      for (auto& e : entries) {
        out_bytes += e.bytes.size();
        outq.push_back(std::move(e));
      }
      if (was_idle && out_bytes > 0) {
        last_progress = Clock::now();
      }
      if (!kill && out_bytes > shared->cfg.max_write_queue_bytes) {
        kill = true;
        shared->overflow_kills.fetch_add(1, std::memory_order_relaxed);
      }
      // An armed EPOLLOUT already guarantees a flush; otherwise the
      // loop must be poked (and always for a kill, which EPOLLOUT on a
      // jammed socket would never deliver).
      if (!arm_requested && (!want_write || kill)) {
        arm_requested = true;
        need_notify = true;
      }
    }
    if (need_notify) {
      loop->notify(weak_from_this());
    }
    return true;
  }

  /// Asks the owning loop to look at this connection (used by the last
  /// in-flight completion on a half-closed connection, so the close is
  /// prompt instead of waiting for the next maintenance scan).
  void request_attention() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!open || arm_requested) {
        return;
      }
      arm_requested = true;
    }
    loop->notify(weak_from_this());
  }
};

/// One epoll event loop: an fd-keyed connection registry plus the
/// thread body. Loop 0 additionally owns the listening socket and
/// deals accepted connections round-robin across all loops.
class TcpFrontend::Loop {
 public:
  Loop(WireService& service, std::shared_ptr<Shared> shared, int listen_fd)
      : service_(service), shared_(std::move(shared)),
        listen_fd_(listen_fd), ls_(std::make_shared<LoopShared>()) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    EB_REQUIRE(epoll_fd_ >= 0, "epoll_create1() failed");
    ls_->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    EB_REQUIRE(ls_->wake_fd >= 0, "eventfd() failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = ls_->wake_fd;
    EB_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, ls_->wake_fd, &ev) == 0,
               "epoll_ctl(wake fd) failed");
    if (listen_fd_ >= 0) {
      ev.data.fd = listen_fd_;
      EB_REQUIRE(
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
          "epoll_ctl(listen fd) failed");
    }
  }

  ~Loop() {
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
  }

  Loop(const Loop&) = delete;
  Loop& operator=(const Loop&) = delete;

  /// Accept targets for round-robin assignment (set on loop 0 only,
  /// before any thread starts; includes loop 0 itself).
  void set_targets(std::vector<Loop*> targets) {
    targets_ = std::move(targets);
  }

  void stop() {
    stopping_.store(true, std::memory_order_release);
    const std::lock_guard<std::mutex> lock(ls_->mu);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(ls_->wake_fd, &one, sizeof(one));
  }

  /// Closes every registered connection, failing its queued responses.
  /// Called after the loop thread has been joined.
  void close_all() {
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
    {
      const std::lock_guard<std::mutex> lock(reg_mu_);
      conns.swap(conns_);
    }
    for (auto& [fd, conn] : conns) {
      std::size_t dropped = 0;
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->open) {
          continue;
        }
        conn->open = false;
        dropped = conn->outq.size();
        conn->outq.clear();
        conn->wbuf.clear();
        conn->woff = 0;
        conn->out_bytes = 0;
      }
      shared_->dropped_responses.fetch_add(dropped,
                                           std::memory_order_relaxed);
      shared_->open_conns.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
    }
    const std::lock_guard<std::mutex> lock(ls_->mu);
    ls_->stopped = true;
    ls_->arm_queue.clear();
  }

  void run() {
    epoll_event evs[64];
    auto last_scan = Clock::now();
    while (!stopping_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(
          epoll_fd_, evs, 64,
          static_cast<int>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  kScanPeriod)
                  .count()));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return;  // epoll fd gone: fatal, stop serving this loop
      }
      for (int i = 0; i < n; ++i) {
        if (stopping_.load(std::memory_order_acquire)) {
          return;
        }
        const int fd = evs[i].data.fd;
        if (fd == ls_->wake_fd) {
          drain_wake();
        } else if (listen_fd_ >= 0 && fd == listen_fd_) {
          accept_ready();
        } else {
          handle_conn_event(fd, evs[i].events);
        }
      }
      const auto now = Clock::now();
      if (now - last_scan >= kScanPeriod) {
        last_scan = now;
        scan(now);
      }
    }
  }

  /// Registers an accepted connection with THIS loop (callable from the
  /// accepting loop's thread: epoll_ctl is thread-safe and the registry
  /// mutex publishes the Connection to the owning thread).
  void adopt(const std::shared_ptr<Connection>& conn) {
    conn->loop = ls_;
    conn->last_progress = Clock::now();
    {
      const std::lock_guard<std::mutex> lock(reg_mu_);
      conns_[conn->fd] = conn;
    }
    shared_->open_conns.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      {
        const std::lock_guard<std::mutex> lock(reg_mu_);
        conns_.erase(conn->fd);
      }
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->open = false;
      }
      shared_->open_conns.fetch_sub(1, std::memory_order_relaxed);
      ::close(conn->fd);
    }
  }

  [[nodiscard]] std::size_t registered() const {
    const std::lock_guard<std::mutex> lock(reg_mu_);
    return conns_.size();
  }

 private:
  std::shared_ptr<Connection> lookup(int fd) {
    const std::lock_guard<std::mutex> lock(reg_mu_);
    const auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : it->second;
  }

  void accept_ready() {
    for (;;) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) {
          continue;
        }
        // EAGAIN: drained. EMFILE/ENFILE and friends: back off until
        // the next level-triggered notification instead of spinning.
        return;
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      shared_->connections.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Connection>();
      conn->fd = cfd;
      conn->shared = shared_;
      Loop* target = targets_[rr_next_++ % targets_.size()];
      target->adopt(conn);
    }
  }

  void drain_wake() {
    std::uint64_t v = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(ls_->wake_fd, &v, sizeof(v));
    std::vector<std::weak_ptr<Connection>> q;
    {
      const std::lock_guard<std::mutex> lock(ls_->mu);
      q.swap(ls_->arm_queue);
    }
    for (const auto& w : q) {
      const auto conn = w.lock();
      if (!conn) {
        continue;
      }
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        conn->arm_requested = false;
        if (!conn->open) {
          continue;
        }
      }
      try_flush(conn);
    }
  }

  void handle_conn_event(int fd, std::uint32_t events) {
    const auto conn = lookup(fd);
    if (!conn) {
      return;  // closed earlier in this epoll batch
    }
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      close_conn(conn);
      return;
    }
    if ((events & EPOLLOUT) != 0 && !try_flush(conn)) {
      return;
    }
    if ((events & EPOLLIN) != 0) {
      handle_readable(conn);
    }
  }

  void handle_readable(const std::shared_ptr<Connection>& conn) {
    bool fatal = false;
    std::size_t total = 0;
    for (;;) {
      const std::size_t old = conn->rbuf.size();
      conn->rbuf.resize(old + kReadChunk);
      const ssize_t k =
          ::recv(conn->fd, conn->rbuf.data() + old, kReadChunk, 0);
      if (k < 0) {
        conn->rbuf.resize(old);
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        close_conn(conn);
        return;
      }
      if (k == 0) {
        conn->rbuf.resize(old);
        conn->read_eof.store(true, std::memory_order_release);
        stop_reading(conn);
        break;
      }
      conn->rbuf.resize(old + static_cast<std::size_t>(k));
      shared_->bytes_read.fetch_add(static_cast<std::size_t>(k),
                                    std::memory_order_relaxed);
      fatal = parse_frames(conn);
      if (fatal) {
        stop_reading(conn);
        break;
      }
      total += static_cast<std::size_t>(k);
      if (total >= kMaxReadPerEvent) {
        break;  // level-triggered: epoll re-notifies for the rest
      }
    }
    compact(*conn);
    if (fatal || conn->read_eof.load(std::memory_order_acquire)) {
      try_flush(conn);  // closes once drained and eligible
    }
  }

  /// Peels whole frames off conn->rbuf from the read cursor. Returns
  /// true when a fatal (stream-desyncing) frame was hit: the caller
  /// stops reading, the error response flushes, then the socket closes.
  bool parse_frames(const std::shared_ptr<Connection>& conn) {
    auto& buf = conn->rbuf;
    while (conn->rpos < buf.size()) {
      // Demultiplex by peeked type first: ping and stats frames are
      // served inline on the loop thread (they never enter the gateway),
      // everything else -- including garbage peek_type rejects, which
      // decode_request re-classifies with the same status -- takes the
      // request path below.
      std::uint8_t type = 0;
      const wire::DecodeStatus pk = wire::peek_type(
          buf.data() + conn->rpos, buf.size() - conn->rpos, type);
      if (pk == wire::DecodeStatus::kNeedMoreData) {
        return false;
      }
      if (pk == wire::DecodeStatus::kOk &&
          (type == wire::kTypePing || type == wire::kTypeStats ||
           type == wire::kTypeModelAdmin)) {
        if (!handle_control_frame(conn, type)) {
          return false;  // frame still incomplete
        }
        continue;
      }
      wire::RequestFrame req;
      std::size_t consumed = 0;
      const wire::DecodeStatus st = wire::decode_request(
          buf.data() + conn->rpos, buf.size() - conn->rpos, req, consumed);
      if (st == wire::DecodeStatus::kNeedMoreData) {
        return false;
      }
      if (st == wire::DecodeStatus::kOk) {
        if ((req.flags & wire::kFlagAcceptBatch) != 0) {
          conn->batch_ok.store(true, std::memory_order_relaxed);
        }
        if ((req.flags & wire::kFlagAcceptStream) != 0) {
          conn->stream_ok.store(true, std::memory_order_relaxed);
        }
        shared_->requests.fetch_add(1, std::memory_order_relaxed);
        conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
        submit(conn, std::move(req));
        conn->rpos += consumed;
        continue;
      }
      // Bad frame. Only a content-malformed body inside a well-formed
      // envelope (kMalformed, boundary known) is skippable -- and its
      // error response echoes the frame's id whenever the envelope
      // decoded through the id field (decode_request's contract), so a
      // pipelined client can match the rejection to its request. Bad
      // magic/version/type or a hostile length desync the stream: the
      // id 0 error response is flushed and the connection closed.
      shared_->malformed.fetch_add(1, std::memory_order_relaxed);
      const bool skippable =
          st == wire::DecodeStatus::kMalformed && consumed > 0;
      wire::ResponseFrame err;
      err.request_id = skippable ? req.request_id : 0;
      err.status = Status::kInvalidArgument;
      send_response(conn, err);
      if (!skippable) {
        conn->close_after_flush = true;
        return true;
      }
      conn->rpos += consumed;
    }
    return false;
  }

  /// Decodes + answers one type-5/6/7 frame at conn->rpos (the type
  /// was already peeked). Returns false when the frame is still
  /// incomplete (kNeedMoreData); otherwise advances the read cursor --
  /// a malformed body is answered with an id-0 error response and
  /// skipped, exactly like a content-malformed request, since peek_type
  /// already proved the envelope (and thus the boundary) is sound.
  bool handle_control_frame(const std::shared_ptr<Connection>& conn,
                            std::uint8_t type) {
    auto& buf = conn->rbuf;
    const std::uint8_t* p = buf.data() + conn->rpos;
    const std::size_t avail = buf.size() - conn->rpos;
    std::size_t consumed = 0;
    bool ok = false;
    std::uint64_t echo_id = 0;
    std::vector<std::uint8_t> reply;
    if (type == wire::kTypePing) {
      wire::PingFrame ping;
      const wire::DecodeStatus st = wire::decode_ping(p, avail, ping,
                                                      consumed);
      if (st == wire::DecodeStatus::kNeedMoreData) {
        return false;
      }
      // A pong sent at the server is answered too (harmless echo), so
      // a misdirected health probe still proves liveness.
      if (st == wire::DecodeStatus::kOk) {
        ok = true;
        ping.pong = true;
        reply = wire::encode_ping(ping);
        shared_->pings.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (type == wire::kTypeStats) {
      wire::StatsFrame stats;
      const wire::DecodeStatus st = wire::decode_stats(p, avail, stats,
                                                       consumed);
      if (st == wire::DecodeStatus::kNeedMoreData) {
        return false;
      }
      // A server-bound stats *response* is well-formed but nonsensical
      // here; reject it like a malformed body (id still echoable).
      if (st == wire::DecodeStatus::kOk && !stats.response) {
        ok = true;
        wire::StatsFrame out;
        out.response = true;
        out.request_id = stats.request_id;
        service_.fill_stats(out);
        reply = wire::encode_stats(out);
        shared_->stats_requests.fetch_add(1, std::memory_order_relaxed);
      } else if (st == wire::DecodeStatus::kOk) {
        echo_id = stats.request_id;
      }
    } else {
      wire::ModelAdminFrame admin;
      const wire::DecodeStatus st = wire::decode_model_admin(p, avail, admin,
                                                             consumed);
      if (st == wire::DecodeStatus::kNeedMoreData) {
        return false;
      }
      // Like stats: only requests are served; a server-bound admin
      // *response* is rejected with its id echoed.
      if (st == wire::DecodeStatus::kOk && !admin.response) {
        ok = true;
        reply = wire::encode_model_admin(service_.handle_model_admin(admin));
        shared_->admin_requests.fetch_add(1, std::memory_order_relaxed);
      } else if (st == wire::DecodeStatus::kOk) {
        echo_id = admin.request_id;
      }
    }
    if (ok) {
      std::vector<Connection::OutEntry> one;
      one.push_back({false, std::move(reply)});
      if (conn->enqueue(std::move(one))) {
        shared_->responses.fetch_add(1, std::memory_order_relaxed);
      } else {
        shared_->dropped_responses.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      shared_->malformed.fetch_add(1, std::memory_order_relaxed);
      wire::ResponseFrame err;
      err.request_id = echo_id;
      err.status = Status::kInvalidArgument;
      send_response(conn, err);
    }
    conn->rpos += consumed;
    return true;
  }

  /// Hands one decoded request to the gateway. The completion callback
  /// owns everything it touches (shared_ptrs), so a late completion
  /// after this frontend is torn down is safe -- it counts a dropped
  /// response and vanishes.
  void submit(const std::shared_ptr<Connection>& conn,
              wire::RequestFrame req) {
    const std::uint64_t id = req.request_id;
    auto shared = shared_;
    service_.submit_async(
        req.model_id, std::move(req.tensor), req.cls, req.deadline_us,
        [conn, shared, id](Result r) {
          // Runs on a model-server worker thread: an escaping exception
          // would terminate the process, so an output the wire cannot
          // carry (over the frame cap / rank limit) degrades to a
          // kInternalError response instead.
          wire::ResponseFrame resp;
          resp.request_id = id;
          resp.status = r.status;
          resp.queue_us = r.queue_us;
          resp.total_us = r.total_us;
          if (r.status == Status::kOk) {
            resp.tensor = std::move(r.output);
          }
          bool queued = false;
          try {
            const std::size_t payload = 8 * resp.tensor.size();
            if (resp.status == Status::kOk &&
                conn->stream_ok.load(std::memory_order_relaxed) &&
                payload > shared->cfg.stream_chunk_bytes) {
              auto frames = wire::encode_response_chunks(
                  resp, shared->cfg.stream_chunk_bytes);
              std::vector<Connection::OutEntry> entries;
              entries.reserve(frames.size());
              for (auto& f : frames) {
                entries.push_back({false, std::move(f)});
              }
              queued = conn->enqueue(std::move(entries));
              if (queued) {
                shared->chunked_responses.fetch_add(
                    1, std::memory_order_relaxed);
              }
            } else if (conn->batch_ok.load(std::memory_order_relaxed)) {
              std::vector<Connection::OutEntry> one;
              one.push_back({true, wire::encode_response_body(resp)});
              queued = conn->enqueue(std::move(one));
            } else {
              std::vector<Connection::OutEntry> one;
              one.push_back({false, wire::encode_response(resp)});
              queued = conn->enqueue(std::move(one));
            }
          } catch (const std::exception&) {
            resp.status = Status::kInternalError;
            resp.tensor = bnn::Tensor();
            std::vector<Connection::OutEntry> one;
            one.push_back({false, wire::encode_response(resp)});
            queued = conn->enqueue(std::move(one));  // no payload: no throw
          }
          if (queued) {
            shared->responses.fetch_add(1, std::memory_order_relaxed);
          } else {
            shared->dropped_responses.fetch_add(1,
                                                std::memory_order_relaxed);
          }
          // Decrement strictly after the enqueue: a half-closed
          // connection may be reaped the instant in_flight hits 0 with
          // an empty queue, and the response must be inside by then.
          if (conn->in_flight.fetch_sub(1, std::memory_order_acq_rel) ==
                  1 &&
              conn->read_eof.load(std::memory_order_acquire)) {
            conn->request_attention();
          }
        });
  }

  /// Encodes + queues a frontend-originated response (error frames).
  void send_response(const std::shared_ptr<Connection>& conn,
                     const wire::ResponseFrame& resp) {
    std::vector<Connection::OutEntry> one;
    if (conn->batch_ok.load(std::memory_order_relaxed)) {
      one.push_back({true, wire::encode_response_body(resp)});
    } else {
      one.push_back({false, wire::encode_response(resp)});
    }
    if (conn->enqueue(std::move(one))) {
      shared_->responses.fetch_add(1, std::memory_order_relaxed);
    } else {
      shared_->dropped_responses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Read-cursor compaction: only when the consumed prefix is both
  /// large and at least half the buffer, so a client streaming many
  /// small pipelined frames pays O(1) amortized instead of the old
  /// erase-per-recv O(n^2).
  static void compact(Connection& c) {
    if (c.rpos == c.rbuf.size()) {
      c.rpos = 0;
      c.rbuf.clear();
      if (c.rbuf.capacity() > (std::size_t{4} << 20)) {
        c.rbuf.shrink_to_fit();  // drop a one-off giant frame's slab
      }
      return;
    }
    if (c.rpos >= 4096 && c.rpos >= c.rbuf.size() / 2) {
      c.rbuf.erase(c.rbuf.begin(),
                   c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
      c.rpos = 0;
    }
  }

  /// Rewrites the epoll interest mask from `reading` x `want_write`.
  /// Both flags are written only by the owning loop thread.
  void rearm(const Connection& c, bool want_write) {
    epoll_event ev{};
    ev.events = (c.reading ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void stop_reading(const std::shared_ptr<Connection>& conn) {
    if (!conn->reading) {
      return;
    }
    conn->reading = false;
    bool ww = false;
    {
      const std::lock_guard<std::mutex> lock(conn->mu);
      ww = conn->want_write;
    }
    rearm(*conn, ww);
  }

  /// Drains the outbound queue into the socket with nonblocking sends.
  /// Arms EPOLLOUT only while the socket refuses bytes. Returns false
  /// when the connection was closed (kill, error, or drained-and-done).
  bool try_flush(const std::shared_ptr<Connection>& conn) {
    bool should_close = false;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      if (!conn->open) {
        return false;
      }
      if (conn->kill) {
        lock.unlock();
        close_conn(conn);
        return false;
      }
      for (;;) {
        if (conn->woff == conn->wbuf.size()) {
          conn->wbuf.clear();
          conn->woff = 0;
          refill_wbuf(*conn);
          if (conn->wbuf.empty()) {
            break;  // fully drained
          }
        }
        const ssize_t k =
            ::send(conn->fd, conn->wbuf.data() + conn->woff,
                   conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
        if (k < 0) {
          if (errno == EINTR) {
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!conn->want_write) {
              conn->want_write = true;
              rearm(*conn, true);
            }
            return true;  // EPOLLOUT will resume the flush
          }
          lock.unlock();
          close_conn(conn);
          return false;
        }
        conn->woff += static_cast<std::size_t>(k);
        conn->out_bytes -= static_cast<std::size_t>(k);
        conn->last_progress = Clock::now();
        shared_->bytes_written.fetch_add(static_cast<std::size_t>(k),
                                         std::memory_order_relaxed);
      }
      if (conn->want_write) {
        conn->want_write = false;
        rearm(*conn, false);
      }
      should_close =
          conn->close_after_flush ||
          (conn->read_eof.load(std::memory_order_acquire) &&
           conn->in_flight.load(std::memory_order_acquire) == 0);
    }
    if (should_close) {
      close_conn(conn);
      return false;
    }
    return true;
  }

  /// Moves queued entries into the staging buffer (under conn->mu).
  /// Consecutive `body` entries coalesce into one type-3 batched frame
  /// when the client opted in and two or more are waiting -- the
  /// pipelining win: one syscall-sized burst carries many completions.
  void refill_wbuf(Connection& c) {
    while (!c.outq.empty() && c.wbuf.size() < kFlushChunk) {
      if (!c.outq.front().body) {
        c.wbuf.insert(c.wbuf.end(), c.outq.front().bytes.begin(),
                      c.outq.front().bytes.end());
        c.outq.pop_front();
        continue;
      }
      std::vector<std::vector<std::uint8_t>> run;
      std::size_t run_bytes = 0;
      // Batch frame body: 8 fixed bytes + u16 count + (4 + len) each;
      // stay under the frame cap with room to spare.
      while (!c.outq.empty() && c.outq.front().body &&
             run.size() < 65535 &&
             10 + run_bytes + 4 * (run.size() + 1) +
                     c.outq.front().bytes.size() <=
                 wire::kMaxFrameBytes &&
             (run.empty() || c.wbuf.size() + run_bytes < kFlushChunk)) {
        run_bytes += c.outq.front().bytes.size();
        c.out_bytes -= c.outq.front().bytes.size();
        run.push_back(std::move(c.outq.front().bytes));
        c.outq.pop_front();
      }
      std::vector<std::uint8_t> frame;
      if (run.size() == 1) {
        frame = wire::frame_body(run[0]);
      } else {
        frame = wire::encode_response_batch(run);
        shared_->batched_frames.fetch_add(1, std::memory_order_relaxed);
      }
      c.out_bytes += frame.size();
      c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
    }
  }

  /// Periodic maintenance: write-stall kills and eof-idle closes (the
  /// backstop for completions whose wakeup raced shutdown of interest).
  void scan(Clock::time_point now) {
    std::vector<std::shared_ptr<Connection>> snapshot;
    {
      const std::lock_guard<std::mutex> lock(reg_mu_);
      snapshot.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) {
        snapshot.push_back(conn);
      }
    }
    const auto stall_timeout = std::chrono::milliseconds(
        shared_->cfg.write_stall_timeout_ms);
    for (const auto& conn : snapshot) {
      bool close_now = false;
      bool stalled = false;
      {
        const std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->open) {
          continue;
        }
        const bool pending = conn->out_bytes > 0;
        if (conn->kill) {
          close_now = true;
        } else if (pending && shared_->cfg.write_stall_timeout_ms > 0 &&
                   now - conn->last_progress > stall_timeout) {
          stalled = true;
          close_now = true;
        } else if (!pending &&
                   (conn->close_after_flush ||
                    (conn->read_eof.load(std::memory_order_acquire) &&
                     conn->in_flight.load(std::memory_order_acquire) ==
                         0))) {
          close_now = true;
        }
      }
      if (stalled) {
        shared_->stall_kills.fetch_add(1, std::memory_order_relaxed);
      }
      if (close_now) {
        close_conn(conn);
      }
    }
  }

  /// Tears one connection down: marks it closed (failing queued
  /// responses), unregisters it and closes the fd. Only the owning
  /// loop thread (or close_all after the join) gets here.
  void close_conn(const std::shared_ptr<Connection>& conn) {
    std::size_t dropped = 0;
    {
      const std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->open) {
        return;
      }
      conn->open = false;
      dropped = conn->outq.size();
      conn->outq.clear();
      conn->wbuf.clear();
      conn->woff = 0;
      conn->out_bytes = 0;
    }
    shared_->dropped_responses.fetch_add(dropped,
                                         std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(reg_mu_);
      conns_.erase(conn->fd);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    shared_->open_conns.fetch_sub(1, std::memory_order_relaxed);
  }

  WireService& service_;
  std::shared_ptr<Shared> shared_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;  ///< -1 on every loop but loop 0.
  std::shared_ptr<LoopShared> ls_;
  std::vector<Loop*> targets_;  ///< Round-robin accept targets (loop 0).
  std::size_t rr_next_ = 0;
  std::atomic<bool> stopping_{false};
  mutable std::mutex reg_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

TcpFrontend::TcpFrontend(Gateway& gateway, TcpFrontendConfig cfg)
    : owned_service_(std::make_unique<GatewayWireService>(gateway)),
      service_(*owned_service_), shared_(std::make_shared<Shared>()) {
  start(std::move(cfg));
}

TcpFrontend::TcpFrontend(WireService& service, TcpFrontendConfig cfg)
    : service_(service), shared_(std::make_shared<Shared>()) {
  start(std::move(cfg));
}

void TcpFrontend::start(TcpFrontendConfig cfg) {
  if (cfg.event_loops == 0) {
    cfg.event_loops = 1;
  }
  shared_->cfg = cfg;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  EB_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  EB_REQUIRE(::inet_pton(AF_INET, cfg.bind_address.c_str(),
                         &addr.sin_addr) == 1,
             "bad bind address '" + cfg.bind_address + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    EB_REQUIRE(false, "bind/listen on " + cfg.bind_address + " failed: " +
                          std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  EB_REQUIRE(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             "getsockname() failed");
  port_ = ntohs(bound.sin_port);

  loops_.reserve(cfg.event_loops);
  for (std::size_t i = 0; i < cfg.event_loops; ++i) {
    loops_.push_back(std::make_unique<Loop>(service_, shared_,
                                            i == 0 ? listen_fd_ : -1));
  }
  std::vector<Loop*> targets;
  targets.reserve(loops_.size());
  for (const auto& l : loops_) {
    targets.push_back(l.get());
  }
  loops_[0]->set_targets(std::move(targets));
  threads_.reserve(loops_.size());
  for (const auto& l : loops_) {
    threads_.emplace_back([loop = l.get()] { loop->run(); });
  }
}

TcpFrontend::~TcpFrontend() { shutdown(); }

TcpFrontend::Stats TcpFrontend::stats() const {
  Stats s;
  s.connections = shared_->connections.load(std::memory_order_relaxed);
  s.requests = shared_->requests.load(std::memory_order_relaxed);
  s.responses = shared_->responses.load(std::memory_order_relaxed);
  s.malformed = shared_->malformed.load(std::memory_order_relaxed);
  s.pings = shared_->pings.load(std::memory_order_relaxed);
  s.stats_requests =
      shared_->stats_requests.load(std::memory_order_relaxed);
  s.admin_requests =
      shared_->admin_requests.load(std::memory_order_relaxed);
  s.batched_frames =
      shared_->batched_frames.load(std::memory_order_relaxed);
  s.chunked_responses =
      shared_->chunked_responses.load(std::memory_order_relaxed);
  s.bytes_read = shared_->bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = shared_->bytes_written.load(std::memory_order_relaxed);
  s.overflow_kills =
      shared_->overflow_kills.load(std::memory_order_relaxed);
  s.stall_kills = shared_->stall_kills.load(std::memory_order_relaxed);
  s.dropped_responses =
      shared_->dropped_responses.load(std::memory_order_relaxed);
  return s;
}

std::size_t TcpFrontend::open_connections() const {
  return shared_->open_conns.load(std::memory_order_relaxed);
}

void TcpFrontend::shutdown() {
  const std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) {
    return;
  }
  for (const auto& l : loops_) {
    l->stop();
  }
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  for (const auto& l : loops_) {
    l->close_all();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  joined_ = true;
}

}  // namespace eb::serve
