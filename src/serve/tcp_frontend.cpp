#include "serve/tcp_frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "serve/wire.hpp"

namespace eb::serve {

/// Stats shared with completion callbacks, which may outlive the
/// frontend object itself (a drained gateway fulfils them late).
struct TcpFrontend::Shared {
  mutable std::mutex mu;
  Stats stats;
};

/// One accepted socket. Writes are serialized by write_mu; `open` gates
/// them so a completion callback firing after shutdown()/close is a
/// silent no-op instead of a write to a recycled fd.
struct TcpFrontend::Connection {
  int fd = -1;
  std::mutex write_mu;
  bool open = true;
  std::atomic<bool> reader_done{false};  // reaped by the accept loop

  // Writes one whole frame; drops it silently once the socket is gone
  // (client hung up / frontend shut down). A send that exceeds the
  // socket's SO_SNDTIMEO (client stopped reading) kills the connection:
  // completion callbacks run on model-server worker threads, which must
  // never be parked behind one slow client.
  void send_frame(const std::vector<std::uint8_t>& bytes) {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (!open) {
      return;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t k = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (k < 0) {
        if (errno == EINTR) {
          continue;
        }
        // EAGAIN/EWOULDBLOCK = send timeout expired; anything else =
        // peer gone. Either way the reader will observe the shutdown.
        open = false;
        ::shutdown(fd, SHUT_RDWR);
        return;
      }
      off += static_cast<std::size_t>(k);
    }
  }

  // Unblocks a reader stuck in recv(2) without invalidating the fd.
  void shutdown_io() { ::shutdown(fd, SHUT_RDWR); }

  void close_fd() {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    open = false;
  }

  ~Connection() { close_fd(); }
};

TcpFrontend::TcpFrontend(Gateway& gateway, TcpFrontendConfig cfg)
    : gateway_(gateway), cfg_(std::move(cfg)),
      shared_(std::make_shared<Shared>()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  EB_REQUIRE(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  EB_REQUIRE(::inet_pton(AF_INET, cfg_.bind_address.c_str(),
                         &addr.sin_addr) == 1,
             "bad bind address '" + cfg_.bind_address + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    EB_REQUIRE(false, "bind/listen on " + cfg_.bind_address + " failed: " +
                          std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  EB_REQUIRE(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             "getsockname() failed");
  port_ = ntohs(bound.sin_port);
  // The fd travels by value: the accept loop must not read the member,
  // which shutdown() rewrites from another thread.
  acceptor_ = std::thread([this, fd = listen_fd_] { accept_loop(fd); });
}

TcpFrontend::~TcpFrontend() { shutdown(); }

TcpFrontend::Stats TcpFrontend::stats() const {
  const std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->stats;
}

void TcpFrontend::accept_loop(int listen_fd) {
  for (;;) {
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener shut down (or fatal): stop accepting
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(cfd);
        return;
      }
      // Reap finished connections first: joinable reader handles and
      // dead Connection objects must not accumulate for the frontend's
      // whole lifetime on short-lived-connection traffic.
      for (std::size_t i = connections_.size(); i-- > 0;) {
        if (connections_[i]->reader_done.load(std::memory_order_acquire)) {
          readers_[i].join();
          // Fail any in-flight send() first: close_fd() takes write_mu,
          // and a completion callback could be parked in send() on this
          // connection -- never wait that out while holding mu_.
          connections_[i]->shutdown_io();
          connections_[i]->close_fd();
          readers_.erase(readers_.begin() + static_cast<std::ptrdiff_t>(i));
          connections_.erase(connections_.begin() +
                             static_cast<std::ptrdiff_t>(i));
        }
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (cfg_.send_timeout_ms > 0) {
        timeval tv{};
        tv.tv_sec = cfg_.send_timeout_ms / 1000;
        tv.tv_usec = static_cast<long>(cfg_.send_timeout_ms % 1000) * 1000;
        ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = cfd;
      connections_.push_back(conn);
      readers_.emplace_back([this, conn] {
        reader_loop(conn);
        conn->reader_done.store(true, std::memory_order_release);
      });
    }
    {
      const std::lock_guard<std::mutex> lock(shared_->mu);
      ++shared_->stats.connections;
    }
  }
}

void TcpFrontend::reader_loop(std::shared_ptr<Connection> conn) {
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t k = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (k < 0 && errno == EINTR) {
      continue;
    }
    if (k <= 0) {
      return;  // EOF or error: connection done
    }
    buf.insert(buf.end(), chunk, chunk + k);
    std::size_t pos = 0;
    bool fatal = false;
    while (pos < buf.size()) {
      wire::RequestFrame req;
      std::size_t consumed = 0;
      const wire::DecodeStatus st = wire::decode_request(
          buf.data() + pos, buf.size() - pos, req, consumed);
      if (st == wire::DecodeStatus::kNeedMoreData) {
        break;
      }
      if (st == wire::DecodeStatus::kOk) {
        {
          const std::lock_guard<std::mutex> lock(shared_->mu);
          ++shared_->stats.requests;
        }
        const std::uint64_t id = req.request_id;
        // The callback owns everything it touches (shared_ptrs), so a
        // late completion after this frontend is torn down is safe.
        gateway_.submit_async(
            req.model_id, std::move(req.tensor), req.cls, req.deadline_us,
            [conn, shared = shared_, id](Result r) {
              // This runs on a model-server worker thread: an escaping
              // exception would terminate the process, so an output the
              // wire cannot carry (over the frame cap / rank limit)
              // degrades to a kInternalError response instead.
              wire::ResponseFrame resp;
              resp.request_id = id;
              resp.status = r.status;
              resp.queue_us = r.queue_us;
              resp.total_us = r.total_us;
              if (r.status == Status::kOk) {
                resp.tensor = std::move(r.output);
              }
              std::vector<std::uint8_t> frame;
              try {
                frame = wire::encode_response(resp);
              } catch (const std::exception&) {
                resp.status = Status::kInternalError;
                resp.tensor = bnn::Tensor();
                frame = wire::encode_response(resp);  // no payload: no throw
              }
              conn->send_frame(frame);
              const std::lock_guard<std::mutex> lock(shared->mu);
              ++shared->stats.responses;
            });
        pos += consumed;
        continue;
      }
      // Bad frame: answer with kInvalidArgument. Only a content-malformed
      // body inside a well-formed envelope (kMalformed, boundary known)
      // is skippable; bad magic/version/type or a hostile length mean the
      // byte stream itself cannot be trusted, so close after the error
      // response.
      {
        const std::lock_guard<std::mutex> lock(shared_->mu);
        ++shared_->stats.malformed;
      }
      wire::ResponseFrame err;
      err.request_id = 0;  // the bad frame's id is not trustworthy
      err.status = Status::kInvalidArgument;
      conn->send_frame(wire::encode_response(err));
      {
        const std::lock_guard<std::mutex> lock(shared_->mu);
        ++shared_->stats.responses;
      }
      if (st != wire::DecodeStatus::kMalformed || consumed == 0) {
        fatal = true;
        break;
      }
      pos += consumed;
    }
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(pos));
    if (fatal) {
      conn->shutdown_io();
      return;
    }
  }
}

void TcpFrontend::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  const std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept(2)
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);  // after the join: nobody else touches the fd
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
    readers.swap(readers_);
  }
  for (const auto& c : conns) {
    c->shutdown_io();  // unblocks recv(2)
  }
  for (auto& t : readers) {
    t.join();
  }
  for (const auto& c : conns) {
    c->close_fd();
  }
  joined_ = true;
}

}  // namespace eb::serve
