#include "serve/drift_monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <utility>

#include "common/error.hpp"

namespace eb::serve {

DriftMonitor::DriftMonitor(Gateway& gateway, DriftMonitorConfig cfg)
    : gateway_(gateway),
      cfg_(std::move(cfg)),
      base_(cfg_.seed),
      model_(cfg_.drift) {
  EB_REQUIRE(!cfg_.model.empty(), "drift monitor needs a model id");
  EB_REQUIRE(cfg_.exec != nullptr, "drift monitor needs the model executor");
  EB_REQUIRE(!cfg_.canaries.empty(), "drift monitor needs >= 1 canary");
  EB_REQUIRE(cfg_.interval_us >= 1, "canary interval must be >= 1 us");
  EB_REQUIRE(cfg_.min_accuracy >= 0.0 && cfg_.min_accuracy <= 1.0,
             "accuracy floor must be in [0, 1]");
  for (const auto& c : cfg_.canaries) {
    EB_REQUIRE(!c.gold.empty(), "canary gold reference must be non-empty");
  }
  programmed_at_ = clk().now();
  thread_ = std::thread([this] { loop(); });
}

DriftMonitor::~DriftMonitor() { stop(); }

void DriftMonitor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::size_t DriftMonitor::epochs() const {
  return epochs_.load(std::memory_order_acquire);
}

std::size_t DriftMonitor::rewrites() const {
  return rewrites_.load(std::memory_order_acquire);
}

double DriftMonitor::last_accuracy() const {
  return last_accuracy_.load(std::memory_order_acquire);
}

std::uint64_t DriftMonitor::generation() const {
  return generation_.load(std::memory_order_acquire);
}

void DriftMonitor::loop() {
  // Anchor the first epoch to construction time (programmed_at_ was
  // stamped in the constructor, before this thread existed): under a
  // VirtualClock the test may advance time before this thread is even
  // scheduled, and reading the clock here would silently push the first
  // epoch one advance into the future.
  auto next = programmed_at_ + std::chrono::microseconds(cfg_.interval_us);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_ && clk().now() < next) {
        // VirtualClock's wait_until polls; stop_ is rechecked each wake.
        clk().wait_until(lock, cv_, next);
      }
      if (stop_) {
        return;
      }
    }
    tick();
    next += std::chrono::microseconds(cfg_.interval_us);
    // A late epoch (long canary round) must not burst-fire to catch up:
    // the cadence is "at most one epoch per interval of clock time".
    if (next < clk().now()) {
      next = clk().now() + std::chrono::microseconds(cfg_.interval_us);
    }
  }
}

void DriftMonitor::tick() {
  // 1. Age the crossbars to this epoch's drift time. Generation g forks
  // its own stream so a rewrite re-programs onto fresh (deterministic)
  // device exponents.
  const double t_s =
      std::chrono::duration<double>(clk().now() - programmed_at_).count();
  const RngStream gen_base =
      base_.fork(generation_.load(std::memory_order_relaxed), 0, 0);
  cfg_.exec->set_drift(model_, t_s, gen_base);

  // 2-3. Probe through the front door and score against packed gold.
  const double accuracy = run_canaries();
  last_accuracy_.store(accuracy, std::memory_order_release);
  const bool ok = accuracy >= cfg_.min_accuracy;
  gateway_.record_canary(ok);

  // 4. Below the floor: rewrite (online recalibration).
  if (!ok) {
    rewrite();
  }
  epochs_.fetch_add(1, std::memory_order_release);
}

double DriftMonitor::run_canaries() {
  // Submit every canary before waiting on any: they coalesce into the
  // same server batches tenant traffic uses.
  std::vector<std::future<Result>> futs;
  futs.reserve(cfg_.canaries.size());
  for (const auto& c : cfg_.canaries) {
    futs.push_back(gateway_.submit(cfg_.model, c.input, cfg_.canary_class,
                                   cfg_.canary_deadline_us));
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Result r = futs[i].get();
    const auto& gold = cfg_.canaries[i].gold;
    if (!r.ok() || r.output.size() != gold.size()) {
      continue;  // scores 0
    }
    std::size_t matched = 0;
    for (std::size_t j = 0; j < gold.size(); ++j) {
      if (std::llround(r.output[j]) ==
          static_cast<long long>(gold[j])) {
        ++matched;
      }
    }
    sum += static_cast<double>(matched) / static_cast<double>(gold.size());
  }
  return sum / static_cast<double>(cfg_.canaries.size());
}

void DriftMonitor::rewrite() {
  // Rewrites do real work (re-programming every device), so the duration
  // the snapshot reports is real time even under a VirtualClock.
  const auto start = std::chrono::steady_clock::now();
  cfg_.exec->clear_drift();
  programmed_at_ = clk().now();
  generation_.fetch_add(1, std::memory_order_release);
  rewrites_.fetch_add(1, std::memory_order_release);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  gateway_.record_rewrite(
      static_cast<std::uint64_t>(std::max<std::int64_t>(us.count(), 1)));
}

}  // namespace eb::serve
