/// \file
/// \brief Deadline classes and the weighted-deficit round-robin scheduler
/// behind serve::Gateway's admission queues.
///
/// Two pieces live here, both deliberately free of threads so they can be
/// unit-tested deterministically:
///
///  * DeadlineClass / ClassConfig -- the three service classes every
///    gateway request is admitted under (interactive | batch |
///    besteffort), each with a scheduling weight, a default deadline and a
///    capacity partition of the gateway's admission queues.
///  * WeightedDrrQueue<Item> -- a deficit round-robin (DRR) scheduler over
///    any number of FIFO queues. Each queue accrues credit in proportion
///    to its weight; one pop costs one credit, so under sustained backlog
///    the pop stream interleaves queues in weight proportion (weights 3:1
///    => 3 pops from the first per 1 from the second, the property the
///    gateway fairness test and the gateway_load CI gate pin down).
///    A per-pop eligibility predicate lets the caller mask queues whose
///    downstream (a model server at queue capacity) cannot accept work;
///    masked queues keep their credit -- they are backlogged, just
///    blocked -- while *empty* queues forfeit it (idle queues must not
///    bank credit, the classic DRR rule).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace eb::serve {

/// Service class a gateway request is admitted under. Values are stable:
/// the wire protocol (serve/wire.hpp) carries them as a single byte.
enum class DeadlineClass : std::uint8_t {
  kInteractive = 0,  ///< Latency-sensitive; highest weight, tight deadline.
  kBatch,            ///< Throughput traffic; mid weight, loose deadline.
  kBestEffort,       ///< Scavenger; lowest weight, no default deadline.
};

/// Number of deadline classes (array extents, wire validation).
inline constexpr std::size_t kNumClasses = 3;

/// Lower-case wire/log name ("interactive", "batch", "besteffort").
[[nodiscard]] const char* to_string(DeadlineClass c);

/// Inverse of to_string; throws eb::Error on an unknown name.
[[nodiscard]] DeadlineClass parse_deadline_class(const std::string& name);

/// Per-class admission policy of a gateway.
struct ClassConfig {
  /// Scheduling weight (> 0): under saturation the class receives this
  /// share of dispatch slots relative to the other classes' weights.
  double weight = 1.0;
  /// Deadline applied to requests submitted without an explicit one;
  /// 0 = none. Measured from gateway admission (end to end).
  std::uint64_t default_deadline_us = 0;
  /// The class's partition of the gateway's admission capacity: total
  /// queued requests of this class (across all models) beyond which
  /// submissions complete with kRejected.
  std::size_t queue_capacity = 4096;
};

/// The default class table: interactive 4x / 100 ms, batch 2x / 1 s,
/// besteffort 1x / no deadline.
[[nodiscard]] std::array<ClassConfig, kNumClasses> default_class_configs();

/// Deficit round-robin over dynamically-registered FIFO queues. Not
/// internally locked -- the gateway calls it under its admission mutex.
template <typename Item>
class WeightedDrrQueue {
 public:
  /// Registers a queue with scheduling weight `weight` (> 0); returns its
  /// handle. Slots of removed queues are reused (their handles come back),
  /// so long-lived register/unregister churn keeps the scan set at
  /// O(live queues) instead of O(queues ever created).
  std::size_t add_queue(double weight) {
    EB_REQUIRE(weight > 0.0, "DRR queue weight must be > 0");
    for (std::size_t h = 0; h < queues_.size(); ++h) {
      if (!queues_[h].live) {
        EB_ASSERT(queues_[h].items.empty(), "dead DRR queue not drained");
        queues_[h] = Q{{}, weight, 0.0, true};
        return h;
      }
    }
    queues_.push_back(Q{{}, weight, 0.0, true});
    return queues_.size() - 1;
  }

  /// Unregisters a queue and returns everything still in it (the caller
  /// owns rejecting/rerouting the drained items).
  std::vector<Item> remove_queue(std::size_t h) {
    Q& q = at(h);
    q.live = false;
    q.deficit = 0.0;
    EB_ASSERT(total_ >= q.items.size(), "DRR total/queue size out of sync");
    total_ -= q.items.size();
    std::vector<Item> out(std::make_move_iterator(q.items.begin()),
                          std::make_move_iterator(q.items.end()));
    q.items.clear();
    return out;
  }

  /// Appends to queue `h` (FIFO within a queue).
  void push(std::size_t h, Item item) {
    Q& q = at(h);
    EB_REQUIRE(q.live, "push to a removed DRR queue");
    q.items.push_back(std::move(item));
    ++total_;
  }

  [[nodiscard]] std::size_t size(std::size_t h) const {
    return at(h).items.size();
  }
  [[nodiscard]] std::size_t total_size() const { return total_; }

  /// Pops the next item under DRR among non-empty queues for which
  /// eligible(handle) holds. Returns the (handle, item) pair, or nullopt
  /// when every non-empty queue is ineligible (or all are empty).
  template <typename Eligible>
  std::optional<std::pair<std::size_t, Item>> pop_next(
      Eligible&& eligible) {
    const std::size_t n = queues_.size();
    if (n == 0 || total_ == 0) {
      return std::nullopt;
    }
    // Pass 1: serve the first eligible queue (from the cursor) that
    // already holds a full credit.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t h = (cursor_ + i) % n;
        Q& q = queues_[h];
        if (!q.live || q.items.empty()) {
          q.deficit = 0.0;  // idle queues do not bank credit
          continue;
        }
        if (!eligible(h)) {
          continue;  // blocked downstream: keeps its credit
        }
        if (q.deficit >= 1.0) {
          Item item = std::move(q.items.front());
          q.items.pop_front();
          q.deficit -= 1.0;
          --total_;
          cursor_ = h;  // keep draining this queue while credit lasts
          return std::make_pair(h, std::move(item));
        }
      }
      if (pass == 1) {
        break;
      }
      // Grant round: no eligible queue had a full credit. Top every
      // eligible backlogged queue up by the smallest whole number of
      // weight-quanta that pushes at least one of them over 1.0, then
      // serve on the second pass. (One grant suffices when weights are
      // >= 1; fractional weights may need several quanta, hence the
      // explicit k.)
      double k = 0.0;
      bool any = false;
      for (std::size_t h = 0; h < n; ++h) {
        Q& q = queues_[h];
        if (!q.live || q.items.empty() || !eligible(h)) {
          continue;
        }
        const double need = (1.0 - q.deficit) / q.weight;
        k = any ? std::min(k, need) : need;
        any = true;
      }
      if (!any) {
        return std::nullopt;  // backlogged queues exist but none eligible
      }
      const double quanta = std::max(1.0, std::ceil(k));
      for (std::size_t h = 0; h < n; ++h) {
        Q& q = queues_[h];
        if (q.live && !q.items.empty() && eligible(h)) {
          q.deficit += quanta * q.weight;
        }
      }
    }
    return std::nullopt;
  }

  /// Convenience pop with every queue eligible.
  std::optional<std::pair<std::size_t, Item>> pop_next() {
    return pop_next([](std::size_t) { return true; });
  }

 private:
  struct Q {
    std::deque<Item> items;
    double weight = 1.0;
    double deficit = 0.0;
    bool live = false;
  };

  [[nodiscard]] Q& at(std::size_t h) {
    EB_REQUIRE(h < queues_.size(), "bad DRR queue handle");
    return queues_[h];
  }
  [[nodiscard]] const Q& at(std::size_t h) const {
    EB_REQUIRE(h < queues_.size(), "bad DRR queue handle");
    return queues_[h];
  }

  std::vector<Q> queues_;
  std::size_t cursor_ = 0;
  std::size_t total_ = 0;
};

}  // namespace eb::serve
