#include "serve/replica_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace eb::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

ReplicaClient::ReplicaClient(ReplicaClientConfig cfg) : cfg_(std::move(cfg)) {
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  EB_REQUIRE(wake_fd_ >= 0, "eventfd() failed");
  thread_ = std::thread([this] { thread_main(); });
}

ReplicaClient::~ReplicaClient() {
  shutdown();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
  }
}

bool ReplicaClient::submit(wire::RequestFrame req,
                           ResponseHandler on_response,
                           DeathHandler on_death) {
  std::vector<std::uint8_t> bytes;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!connected_ || stopping_) {
      return false;
    }
    req.request_id = next_id_++;
    // Capability flags are per-connection, not per-request: this client
    // demultiplexes plain type-2 responses only, so a forwarded
    // client's batch/stream opt-in must not latch on the replica link.
    req.flags = 0;
    bytes = wire::encode_request(req);
    Pending p;
    p.on_response = std::move(on_response);
    p.on_death = std::move(on_death);
    pending_.emplace(req.request_id, std::move(p));
    outq_.push_back(std::move(bytes));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  wake();
  return true;
}

bool ReplicaClient::admin(wire::ModelAdminFrame req, AdminHandler on_response,
                          DeathHandler on_death) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!connected_ || stopping_) {
      return false;
    }
    req.request_id = next_id_++;
    req.response = false;  // only requests leave this side
    Pending p;
    p.on_admin = std::move(on_response);
    p.on_death = std::move(on_death);
    pending_.emplace(req.request_id, std::move(p));
    outq_.push_back(wire::encode_model_admin(req));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  wake();
  return true;
}

bool ReplicaClient::alive() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return connected_ && !stopping_;
}

std::size_t ReplicaClient::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

wire::StatsFrame ReplicaClient::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_stats_;
}

bool ReplicaClient::has_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return have_stats_;
}

ReplicaClient::Counters ReplicaClient::counters() const {
  Counters c;
  c.connects = connects_.load(std::memory_order_relaxed);
  c.deaths = deaths_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.pongs = pongs_.load(std::memory_order_relaxed);
  c.admin_responses = admin_responses_.load(std::memory_order_relaxed);
  return c;
}

void ReplicaClient::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake();
  const std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  teardown();  // idempotent backstop: fail anything still pending
  joined_ = true;
}

void ReplicaClient::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void ReplicaClient::thread_main() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        break;
      }
    }
    if (dial()) {
      io_loop();
    }
    teardown();
    if (!cfg_.reconnect) {
      break;
    }
    // Backoff between dial attempts; the wake eventfd cuts it short at
    // shutdown.
    pollfd pfd{wake_fd_, POLLIN, 0};
    ::poll(&pfd, 1, static_cast<int>(cfg_.reconnect_backoff_ms));
  }
  teardown();
}

bool ReplicaClient::dial() {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.address.port);
  if (::inet_pton(AF_INET, cfg_.address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    // Wait for the nonblocking connect (or a shutdown wake) and check
    // SO_ERROR for the verdict.
    pollfd pfds[2] = {{fd, POLLOUT, 0}, {wake_fd_, POLLIN, 0}};
    const int n =
        ::poll(pfds, 2, static_cast<int>(cfg_.connect_timeout_ms));
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (n <= 0 || (pfds[0].revents & POLLOUT) == 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      ::close(fd);
      return false;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return false;
    }
    fd_ = fd;
    connected_ = true;
  }
  connects_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReplicaClient::io_loop() {
  std::vector<std::uint8_t> rbuf;
  std::size_t rpos = 0;
  std::vector<std::uint8_t> wbuf;
  std::size_t woff = 0;
  auto last_pong = Clock::now();
  auto last_probe = Clock::now() - std::chrono::hours(1);  // probe now
  std::uint64_t nonce = 0;

  const auto interval = std::chrono::milliseconds(
      std::max<std::uint32_t>(cfg_.ping_interval_ms, 1));
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      // Stage every queued frame; frames are whole, so a partial send
      // resumes mid-frame from woff.
      while (!outq_.empty()) {
        wbuf.insert(wbuf.end(), outq_.front().begin(), outq_.front().end());
        outq_.pop_front();
      }
    }
    const auto now = Clock::now();
    if (now - last_probe >= interval) {
      last_probe = now;
      wire::PingFrame ping;
      ping.nonce = ++nonce;
      const auto pf = wire::encode_ping(ping);
      wbuf.insert(wbuf.end(), pf.begin(), pf.end());
      wire::StatsFrame sreq;
      const auto sf = wire::encode_stats(sreq);
      wbuf.insert(wbuf.end(), sf.begin(), sf.end());
    }
    if (cfg_.ping_timeout_ms > 0 &&
        now - last_pong > std::chrono::milliseconds(cfg_.ping_timeout_ms)) {
      return;  // replica unresponsive: dead
    }

    // Flush.
    while (woff < wbuf.size()) {
      const ssize_t k = ::send(fd_, wbuf.data() + woff, wbuf.size() - woff,
                               MSG_NOSIGNAL);
      if (k < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        return;  // connection gone
      }
      woff += static_cast<std::size_t>(k);
    }
    if (woff == wbuf.size()) {
      wbuf.clear();
      woff = 0;
    }

    pollfd pfds[2] = {
        {fd_, static_cast<short>(POLLIN | (wbuf.empty() ? 0 : POLLOUT)), 0},
        {wake_fd_, POLLIN, 0}};
    const int n = ::poll(
        pfds, 2,
        static_cast<int>(std::min<std::uint32_t>(cfg_.ping_interval_ms, 50)));
    if (n < 0 && errno != EINTR) {
      return;
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      std::uint64_t v = 0;
      [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &v, sizeof(v));
    }
    if ((pfds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return;
    }
    if ((pfds[0].revents & POLLIN) == 0) {
      continue;
    }

    // Read + parse.
    for (;;) {
      const std::size_t old = rbuf.size();
      rbuf.resize(old + kReadChunk);
      const ssize_t k = ::recv(fd_, rbuf.data() + old, kReadChunk, 0);
      if (k < 0) {
        rbuf.resize(old);
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        return;
      }
      if (k == 0) {
        return;  // peer closed
      }
      rbuf.resize(old + static_cast<std::size_t>(k));
      break;
    }
    while (rpos < rbuf.size()) {
      std::uint8_t type = 0;
      const wire::DecodeStatus pk =
          wire::peek_type(rbuf.data() + rpos, rbuf.size() - rpos, type);
      if (pk == wire::DecodeStatus::kNeedMoreData) {
        break;
      }
      if (pk != wire::DecodeStatus::kOk) {
        return;  // stream desync: nothing after this can be trusted
      }
      std::size_t consumed = 0;
      if (type == wire::kTypeResponse) {
        wire::ResponseFrame resp;
        if (wire::decode_response(rbuf.data() + rpos, rbuf.size() - rpos,
                                  resp, consumed) !=
            wire::DecodeStatus::kOk) {
          if (consumed == 0) {
            break;  // incomplete
          }
          return;  // malformed response: desync
        }
        ResponseHandler handler;
        AdminHandler admin_handler;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          const auto it = pending_.find(resp.request_id);
          if (it != pending_.end()) {
            handler = std::move(it->second.on_response);
            admin_handler = std::move(it->second.on_admin);
            pending_.erase(it);
          }
        }
        // Unmatched ids (e.g. the server's id-0 error frames) drop.
        if (handler) {
          responses_.fetch_add(1, std::memory_order_relaxed);
          handler(std::move(resp));
        } else if (admin_handler) {
          // The replica judged our admin frame malformed and answered
          // with a type-2 error echoing its id; surface it as a failed
          // admin response so the caller's exactly-once contract holds.
          wire::ModelAdminFrame failed;
          failed.response = true;
          failed.request_id = resp.request_id;
          failed.status = resp.status;
          failed.message = "replica rejected the admin frame";
          admin_responses_.fetch_add(1, std::memory_order_relaxed);
          admin_handler(std::move(failed));
        }
      } else if (type == wire::kTypePing) {
        wire::PingFrame pong;
        if (wire::decode_ping(rbuf.data() + rpos, rbuf.size() - rpos, pong,
                              consumed) != wire::DecodeStatus::kOk) {
          if (consumed == 0) {
            break;
          }
          return;
        }
        if (pong.pong) {
          last_pong = Clock::now();
          pongs_.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (type == wire::kTypeStats) {
        wire::StatsFrame stats;
        if (wire::decode_stats(rbuf.data() + rpos, rbuf.size() - rpos,
                               stats, consumed) != wire::DecodeStatus::kOk) {
          if (consumed == 0) {
            break;
          }
          return;
        }
        if (stats.response) {
          const std::lock_guard<std::mutex> lock(mu_);
          last_stats_ = std::move(stats);
          have_stats_ = true;
        }
      } else if (type == wire::kTypeModelAdmin) {
        wire::ModelAdminFrame admin;
        if (wire::decode_model_admin(rbuf.data() + rpos, rbuf.size() - rpos,
                                     admin, consumed) !=
            wire::DecodeStatus::kOk) {
          if (consumed == 0) {
            break;
          }
          return;
        }
        AdminHandler handler;
        if (admin.response) {
          const std::lock_guard<std::mutex> lock(mu_);
          const auto it = pending_.find(admin.request_id);
          if (it != pending_.end() && it->second.on_admin) {
            handler = std::move(it->second.on_admin);
            pending_.erase(it);
          }
        }
        if (handler) {
          admin_responses_.fetch_add(1, std::memory_order_relaxed);
          handler(std::move(admin));
        }
      } else {
        return;  // batch/chunk frames are never negotiated on this link
      }
      rpos += consumed;
    }
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    } else if (rpos >= 4096 && rpos >= rbuf.size() / 2) {
      rbuf.erase(rbuf.begin(), rbuf.begin() + static_cast<std::ptrdiff_t>(rpos));
      rpos = 0;
    }
  }
}

void ReplicaClient::teardown() {
  std::map<std::uint64_t, Pending> doomed;
  bool was_connected = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    was_connected = connected_;
    connected_ = false;
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    doomed.swap(pending_);
    outq_.clear();
  }
  if (was_connected) {
    deaths_.fetch_add(1, std::memory_order_relaxed);
  }
  failed_.fetch_add(doomed.size(), std::memory_order_relaxed);
  // Death handlers run outside the lock (they typically re-submit to a
  // sibling client) and in submission order (the map is id-sorted).
  for (auto& [id, p] : doomed) {
    if (p.on_death) {
      p.on_death();
    }
  }
}

}  // namespace eb::serve
