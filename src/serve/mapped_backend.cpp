#include "serve/mapped_backend.hpp"

#include <mutex>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace eb::serve {

namespace {

// Shared by every copy of the handler std::function (the Server may copy
// it); the mutex serializes only the per-batch split(), not the batch
// execution itself.
struct MappedHandlerState {
  std::shared_ptr<const map::MappedExecutor> exec;
  std::shared_ptr<const dev::NoiseModel> noise;
  std::mutex mu;
  RngStream rng;
};

}  // namespace

BitVec tensor_to_bits(const bnn::Tensor& t, std::size_t m) {
  EB_REQUIRE(t.size() == m,
             "mapped backend request size must equal executor dims().m");
  BitVec x(m);
  for (std::size_t k = 0; k < m; ++k) {
    x.set(k, t[k] > 0.5);
  }
  return x;
}

BatchHandler make_mapped_handler(
    std::shared_ptr<const map::MappedExecutor> exec,
    std::shared_ptr<const dev::NoiseModel> noise, std::uint64_t seed) {
  EB_REQUIRE(exec != nullptr, "mapped handler needs an executor");
  EB_REQUIRE(noise != nullptr, "mapped handler needs a noise model");
  auto state = std::make_shared<MappedHandlerState>();
  state->exec = std::move(exec);
  state->noise = std::move(noise);
  state->rng.seed(seed);
  return [state](std::span<const bnn::Tensor> batch,
                 ThreadPool& pool) -> std::vector<bnn::Tensor> {
    const std::size_t m = state->exec->dims().m;
    std::vector<BitVec> bits;
    bits.reserve(batch.size());
    for (const auto& t : batch) {
      bits.push_back(tensor_to_bits(t, m));
    }
    RngStream batch_rng;
    {
      const std::lock_guard<std::mutex> lock(state->mu);
      batch_rng = state->rng.split();
    }
    const auto counts =
        state->exec->execute_batch(bits, *state->noise, batch_rng, &pool);
    std::vector<bnn::Tensor> out;
    out.reserve(counts.size());
    for (const auto& row : counts) {
      bnn::Tensor t({row.size()});
      for (std::size_t j = 0; j < row.size(); ++j) {
        t[j] = static_cast<double>(row[j]);
      }
      out.push_back(std::move(t));
    }
    return out;
  };
}

}  // namespace eb::serve
