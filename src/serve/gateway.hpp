/// \file
/// \brief Multi-model serving gateway: a named-model registry with
/// weighted deadline-class admission in front of per-model serve::Servers.
///
/// serve::Server fronts exactly one model. A photonic accelerator
/// deployment is inherently multi-tenant -- crossbar/wavelength resources
/// are shared across workloads -- so the Gateway schedules many *named*
/// models over one machine:
///
///     submit("mlp-a", x, kInteractive) ─┐   per-(model, class)      model
///     submit("mlp-b", x, kBatch) ───────┼─> admission queues ──┐   servers
///     TcpFrontend (wire frames) ────────┘   weighted-deficit   │  ┌───────┐
///                                           round-robin        ├─>│ mlp-a │─┐
///                                           dispatcher ────────┤  ├───────┤ ├─> ONE
///                                           (3:1 under         └─>│ mlp-b │─┘  shared
///                                            saturation)          └───────┘  ThreadPool
///
///  * **Registry** -- register_model(id, ...) accepts a bnn::Network, any
///    serve::BatchHandler, or a map::MappedExecutor (adapted via
///    serve::make_mapped_handler), each with its own batching config and a
///    scheduling weight. Every model gets its own serve::Server whose
///    workers all share the gateway's single re-entrant ThreadPool, so N
///    models never oversubscribe the machine. unregister_model() drains
///    the model's in-flight work (every accepted request is fulfilled) and
///    rejects anything still waiting in the admission queues.
///  * **Weighted admission** -- requests are admitted under a
///    DeadlineClass (interactive | batch | besteffort) into per-(model,
///    class) FIFO queues, each bounded by the class's capacity partition.
///    A dispatcher thread drains them with deficit round-robin at weight
///    `model.weight x class.weight`, forwarding into a model's server only
///    while that server has queue capacity (the server's on_dequeue hook
///    wakes the dispatcher when capacity frees). Under saturation the
///    admitted-throughput ratio between two queues matches their weight
///    ratio. Requests without an explicit deadline inherit their class
///    default; deadlines are end-to-end from gateway admission.
///  * **Metrics** -- per-class gateway Metrics (admission-to-completion
///    latency), per-model server snapshots, and an aggregated
///    GatewaySnapshot for dashboards and the gateway_load CI gate.
///
/// The wire protocol in serve/wire.hpp and the socket frontend in
/// serve/tcp_frontend.hpp let a separate client process drive submit()
/// remotely. docs/SERVING.md#gateway walks through the whole subsystem.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bnn/network.hpp"
#include "bnn/tensor.hpp"
#include "common/clock.hpp"
#include "common/thread_pool.hpp"
#include "device/noise.hpp"
#include "mapping/executor.hpp"
#include "serve/mapped_backend.hpp"
#include "serve/metrics.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace eb::serve {

/// Per-model server defaults for gateway-hosted models: identical to
/// ServerConfig{} except for a *shallow* queue (2 x max_batch). The
/// admission queues -- where the weighted scheduler arbitrates -- must be
/// where backlog accumulates; a deep server queue would swallow the
/// backlog FIFO and erase the weight ratios.
[[nodiscard]] ServerConfig default_model_server_config();

/// How one registered model is hosted.
struct ModelConfig {
  /// Queue + batching knobs of the model's own serve::Server.
  /// pool_threads is ignored (all models share the gateway pool); keep
  /// queue_capacity shallow (see default_model_server_config()).
  ServerConfig server = default_model_server_config();
  /// Scheduling weight multiplier (> 0): the model's (model, class) queue
  /// weighs model.weight x class.weight in the dispatcher.
  double weight = 1.0;
  /// Expected request tensor element count; a mismatching submission is
  /// rejected at admission with kInvalidArgument instead of reaching a
  /// batch (where one malformed co-tenant request would fail every
  /// request batched with it). 0 = unchecked. Auto-derived when left 0:
  /// mapped-executor registrations use dims().m, Network registrations
  /// use the first layer's in_features when it is a dense layer.
  std::size_t input_size = 0;
};

/// Gateway-wide knobs.
struct GatewayConfig {
  /// Shared pool concurrency for every model's intra-batch fan-out
  /// (0 = EB_THREADS / hardware concurrency, 1 = inline).
  std::size_t pool_threads = 0;
  /// Per-class scheduling weight, default deadline and admission-capacity
  /// partition (indexed by DeadlineClass).
  std::array<ClassConfig, kNumClasses> classes = default_class_configs();
  /// Time source for admission stamps and deadlines; propagated into every
  /// registered model's server (unless its ServerConfig sets its own).
  /// nullptr = eb::Clock::real(). Must outlive the gateway.
  Clock* clock = nullptr;
  /// Directory load_model() (and therefore the wire's type-7 load op)
  /// resolves .ebm file names against. Empty disables model loading:
  /// load_model throws and remote loads are rejected.
  std::string model_dir;
};

/// One registered model's slice of a GatewaySnapshot.
struct ModelSnapshot {
  std::string id;                 ///< Registry name.
  double weight = 1.0;            ///< ModelConfig::weight.
  /// ModelConfig::input_size after auto-derivation (0 = unchecked).
  /// Exported over the wire stats frame so a balancer can run the
  /// admission-time shape gate before picking a replica.
  std::size_t input_size = 0;
  MetricsSnapshot server;         ///< The model server's own metrics.
};

/// Consistent cut of everything the gateway recorded: per-class admission
/// metrics (latencies are end-to-end from gateway admission), per-model
/// server snapshots, and class-summed aggregates.
struct GatewaySnapshot {
  /// Indexed by DeadlineClass; queue_depth is the class's current
  /// admission-queue population across all models.
  std::array<MetricsSnapshot, kNumClasses> classes;
  /// Per-class kInternalError completions (handler exceptions).
  std::array<std::size_t, kNumClasses> errors{};
  /// Per-class kInvalidArgument completions (shape mismatches, bad
  /// requests) -- client mistakes, counted apart from `errors` so a
  /// frontend fuzzing run does not trip an internal-error alarm.
  std::array<std::size_t, kNumClasses> invalid{};
  std::vector<ModelSnapshot> models;  ///< Sorted by model id.

  std::size_t submitted = 0;          ///< Sum over classes.
  std::size_t completed = 0;          ///< Sum over classes.
  std::size_t deadline_exceeded = 0;  ///< Sum over classes.
  std::size_t rejected = 0;           ///< Sum over classes.

  /// Canary probes a serve::DriftMonitor submitted through admission.
  std::size_t canaries_sent = 0;
  /// Canary rounds that scored below the monitor's accuracy floor.
  std::size_t canary_failures = 0;
  /// Online crossbar rewrites (recalibrations) triggered by failures.
  std::size_t rewrites = 0;
  /// Wall-clock duration of the most recent rewrite, microseconds.
  std::uint64_t rewrite_us_last = 0;

  /// One-line human-readable digest.
  [[nodiscard]] std::string summary() const;
};

/// The multi-model registry + weighted-deficit admission scheduler.
class Gateway {
 public:
  explicit Gateway(GatewayConfig cfg = {});
  /// Graceful: shutdown() if still running.
  ~Gateway();

  Gateway(const Gateway&) = delete;             ///< Owns threads.
  Gateway& operator=(const Gateway&) = delete;  ///< Owns threads.

  /// Registers `net` under `id` (bit-exact BatchRunner serving). The
  /// network must outlive the registration. Throws on a duplicate id or
  /// after shutdown.
  void register_model(const std::string& id, const bnn::Network& net,
                      ModelConfig mcfg = {});
  /// Registers an arbitrary batch handler under `id`.
  void register_model(const std::string& id, BatchHandler handler,
                      ModelConfig mcfg = {});
  /// Registers a mapped crossbar executor under `id` (adapted via
  /// serve::make_mapped_handler; any factory-built backend works).
  void register_model(const std::string& id,
                      std::shared_ptr<const map::MappedExecutor> exec,
                      std::shared_ptr<const dev::NoiseModel> noise,
                      ModelConfig mcfg = {});
  /// Loads the EBM file `file` -- a plain file name (no path separators,
  /// no "..") resolved against cfg.model_dir -- and registers the decoded
  /// network under `id`, with the gateway owning the network for the
  /// registration's lifetime. This is the wire type-7 load op's backend.
  /// Serving starts warmed: registration constructs the model's
  /// BatchRunners, which prime the XNOR-GEMM autotuner for the model's
  /// shapes. Throws eb::Error when model_dir is unset, the name is not a
  /// plain file name, the file is missing/corrupt, or `id` is taken.
  void load_model(const std::string& id, const std::string& file,
                  ModelConfig mcfg = {});
  /// Removes `id` from the registry: admission-queue stragglers complete
  /// with kRejected, in-flight server work is drained (every accepted
  /// request fulfilled). Returns false when no such model exists.
  bool unregister_model(const std::string& id);
  /// Registered model ids, sorted.
  [[nodiscard]] std::vector<std::string> model_ids() const;
  [[nodiscard]] bool has_model(const std::string& id) const;

  /// Admits one request for `model` under `cls`. deadline_us == 0 applies
  /// the class default (end-to-end from admission; 0 there = none). The
  /// future is always fulfilled: kOk, kDeadlineExceeded, kRejected
  /// (unknown/unregistered model, class queue full, after shutdown),
  /// kInvalidArgument (request shape does not match the model's declared
  /// input_size) or kInternalError.
  std::future<Result> submit(const std::string& model, bnn::Tensor input,
                             DeadlineClass cls = DeadlineClass::kInteractive,
                             std::uint64_t deadline_us = 0);
  /// Callback flavor (the wire frontend's path): `done` runs exactly once
  /// with the terminal Result -- inline when rejected at admission, from a
  /// serving thread otherwise.
  void submit_async(const std::string& model, bnn::Tensor input,
                    DeadlineClass cls, std::uint64_t deadline_us,
                    Completion done);

  /// Stops admissions, drains every admission queue and every model
  /// server (all accepted requests fulfilled), joins the dispatcher.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Consistent cut of per-class, per-model and aggregate metrics.
  [[nodiscard]] GatewaySnapshot metrics() const;
  /// Drift-monitor hooks: a serve::DriftMonitor reports every canary
  /// round (`ok` = scored at or above its accuracy floor) ...
  void record_canary(bool ok);
  /// ... and every online rewrite it performed, with the rewrite's
  /// wall-clock duration. Both surface in GatewaySnapshot and the wire
  /// stats frame.
  void record_rewrite(std::uint64_t duration_us);
  /// The one pool every model server fans batches into.
  [[nodiscard]] ThreadPool& pool() { return pool_; }
  /// Configuration the gateway was built with.
  [[nodiscard]] const GatewayConfig& config() const { return cfg_; }

 private:
  struct ModelEntry;  // registry slot; defined in gateway.cpp

  /// One admitted request waiting in a (model, class) admission queue.
  struct GwPending {
    bnn::Tensor input;
    Clock::time_point enqueue;
    Clock::time_point deadline;  // Clock::time_point::max() = none
    DeadlineClass cls = DeadlineClass::kInteractive;
    Completion done;
    std::shared_ptr<ModelEntry> entry;
  };

  // The injected time source (cfg_.clock or the real clock).
  [[nodiscard]] Clock& clk() const {
    return cfg_.clock != nullptr ? *cfg_.clock : Clock::real();
  }
  void install_entry(
      const std::string& id, const ModelConfig& mcfg,
      const std::function<std::unique_ptr<Server>(const ServerConfig&)>&
          make_server,
      std::shared_ptr<const bnn::Network> owned = nullptr);
  void dispatcher_loop();
  void forward(GwPending item);
  void finish(DeadlineClass cls, Completion& done, Result res);

  GatewayConfig cfg_;
  ThreadPool pool_;

  mutable std::mutex mu_;  // registry + admission queues + DRR state
  std::condition_variable cv_;
  WeightedDrrQueue<GwPending> drr_;
  std::map<std::string, std::shared_ptr<ModelEntry>> models_;
  std::vector<std::shared_ptr<ModelEntry>> slot_entry_;  // DRR handle -> model
  std::array<std::size_t, kNumClasses> class_depth_{};
  bool draining_ = false;

  std::array<Metrics, kNumClasses> class_metrics_;
  std::array<std::atomic<std::size_t>, kNumClasses> class_errors_{};
  std::array<std::atomic<std::size_t>, kNumClasses> class_invalid_{};

  std::atomic<std::size_t> canaries_sent_{0};
  std::atomic<std::size_t> canary_failures_{0};
  std::atomic<std::size_t> rewrites_{0};
  std::atomic<std::uint64_t> rewrite_us_last_{0};

  std::thread dispatcher_;
  std::mutex join_mu_;  // serializes shutdown()
  bool joined_ = false;
};

}  // namespace eb::serve
