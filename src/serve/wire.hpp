/// \file
/// \brief The gateway's framed wire protocol: length-prefixed binary
/// request/response frames with bounds-checked encode/decode, request
/// pipelining, batched responses and chunked streaming for large outputs.
///
/// Every frame is a 4-byte little-endian body length followed by the body:
///
///     ┌────────────┬─────────────────────────────────────────────────┐
///     │ u32 length │ body (length bytes)                             │
///     └────────────┴─────────────────────────────────────────────────┘
///     body (request, type = 1):
///     ┌───────────┬────────┬──────┬───────┬──────────┬───────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 1 │ u8 cls│ u8 flags │ u64 request_id│
///     ├───────────┴───────┬┴──────┴───────┴─┬────────┴──┬────────────┤
///     │ u64 deadline_us   │ u16 id_len + id │ u8 ndims  │ u32 dims[] │
///     ├───────────────────┴─────────────────┴───────────┴────────────┤
///     │ f64 payload[prod(dims)]  (IEEE-754 bit pattern, LE)          │
///     └──────────────────────────────────────────────────────────────┘
///     body (response, type = 2):
///     ┌───────────┬────────┬──────┬───────────┬─────────┬────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 2 │ u8 status │ u8 rsvd │ u64 req_id │
///     ├───────────┴────┬───┴──────┴─┬─────────┴─┬───────┴────────────┤
///     │ f64 queue_us   │ f64 total  │ u8 ndims  │ u32 dims[] + f64[] │
///     └────────────────┴────────────┴───────────┴────────────────────┘
///     body (batched response, type = 3; kFlagAcceptBatch clients only):
///     ┌───────────┬────────┬──────┬─────────┬───────────┬────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 3 │ u8 rsvd │ u16 count │ entries    │
///     └───────────┴────────┴──────┴─────────┴───────────┴────────────┘
///     each entry: u32 len | one whole response *body* (type-2 layout)
///     body (response chunk, type = 4; kFlagAcceptStream clients only):
///     ┌───────────┬────────┬──────┬───────────┬──────────┬───────────┐
///     │ u32 MAGIC │ u8 ver │ u8 4 │ u8 status │ u8 flags │ u64 req_id│
///     ├───────────┴──┬─────┴─────┬┴───────────┴──────────┴───────────┤
///     │ u32 seq      │ header*   │ raw payload bytes (f64 slab slice)│
///     └──────────────┴───────────┴───────────────────────────────────┘
///     *header (seq == 0 only): f64 queue_us | f64 total_us | u8 ndims
///      | u32 dims[];  chunk flags: bit 0 = last chunk of the response.
///     body (ping, type = 5; v2+):
///     ┌───────────┬────────┬──────┬─────────┬─────────┬───────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 5 │ u8 kind │ u8 rsvd │ u64 nonce     │
///     └───────────┴────────┴──────┴─────────┴─────────┴───────────────┘
///     kind: 0 = ping, 1 = pong. A server answers a ping with a pong
///     carrying the same nonce; the sender matches pongs by nonce.
///     body (stats, type = 6; v2+, drift counters v3+):
///     ┌───────────┬────────┬──────┬─────────┬─────────┬───────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 6 │ u8 kind │ u8 rsvd │ u64 request_id│
///     ├───────────┴────────┴──────┴─────────┴─────────┴───────────────┤
///     │ kind 1 (response) only:  u64 submitted | completed | rejected │
///     │  | deadline_exceeded | errors | invalid | queue_depth         │
///     │  | canaries_sent | canary_failures | rewrites | rewrite_us    │
///     │  | u16 model_count | per model: u16 id_len + id               │
///     │  | u64 input_size | u64 queue_depth | u64 completed           │
///     └───────────────────────────────────────────────────────────────┘
///     kind: 0 = request (body ends after request_id), 1 = response. The
///     response echoes the request's id; a balancer uses the per-model
///     input_size to run the admission-time shape gate client-side and
///     the queue depths as its load signal.
///     body (model admin, type = 7; v4+):
///     ┌───────────┬────────┬──────┬─────────┬───────┬─────────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 7 │ u8 kind │ u8 op │ u64 request_id  │
///     ├───────────┴────────┴─┬────┴─────────┴───────┴─────────────────┤
///     │ u16 id_len + model_id│ u16 file_len + file                    │
///     ├──────────────────────┴───────────────────────────────────────-┤
///     │ kind 1 (response) only:  u8 status | u16 msg_len + message    │
///     │  | u16 model_count | per model: u16 id_len + id               │
///     └───────────────────────────────────────────────────────────────┘
///     kind: 0 = request, 1 = response; op: 0 = load, 1 = unload,
///     2 = list. A load names a .ebm file *relative to the replica's
///     --model_dir* (never a raw path, never raw bytes) and the registry
///     id to serve it under; unload names only the id; list carries
///     neither. The response echoes the request's id and op, reports a
///     Status plus a human-readable message, and -- for list, or any
///     successful op -- the replica's registered model ids, sorted. The
///     frame is answered inline on the event loop like ping/stats; a
///     balancer fans it out to every live replica and aggregates.
///
/// ## Pipelining contract
///
/// A client may keep any number of request frames in flight on one
/// connection. The server matches a response to its request **solely by
/// the echoed `request_id`** -- responses complete out of order and MUST
/// NOT be assumed to arrive in request order. `request_id` values are
/// chosen by the client; reusing an id while it is still in flight makes
/// the two responses indistinguishable (allowed, but on the client's
/// head). Error responses echo the offending frame's id whenever the
/// envelope (magic/version/type through the id field) decoded cleanly;
/// only envelope-level garbage -- where no id can be trusted -- is
/// answered with `request_id = 0`.
///
/// The request header's flags byte announces per-connection client
/// capabilities (each latches on first sight, for the connection's whole
/// lifetime): kFlagAcceptBatch lets the server coalesce several queued
/// responses into one type-3 batched frame per flush; kFlagAcceptStream
/// lets it split a large output across type-4 chunk frames (reassembled
/// by ChunkAssembler), lifting the single-frame kMaxFrameBytes cap for
/// responses. Clients that send flags = 0 (all v1 clients) only ever see
/// plain type-2 responses. Unknown flag bits are ignored.
///
/// All integers are little-endian; tensor payloads are raw IEEE-754
/// doubles, so a wire round trip is *byte-identical* to the in-process
/// result (the loopback test pins this). Decoding never trusts a length
/// field it has not bounds-checked: a truncated buffer yields
/// kNeedMoreData, a body over kMaxFrameBytes yields kTooLarge, and any
/// internally-inconsistent frame yields kMalformed with the frame's
/// boundary in `consumed` so a server can skip it and keep the
/// connection. serve::TcpFrontend is the socket loop behind this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bnn/tensor.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace eb::serve::wire {

/// Frame magic ("EBGW" read as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x57474245u;
/// Protocol version this build speaks (v2 added ping + stats frames; v3
/// appended the drift-monitor counters to the stats response; v4 added
/// the type-7 model-admin frame).
inline constexpr std::uint8_t kVersion = 4;
/// Frame-type byte.
inline constexpr std::uint8_t kTypeRequest = 1;
/// Frame-type byte.
inline constexpr std::uint8_t kTypeResponse = 2;
/// Frame-type byte: several response bodies coalesced into one frame.
inline constexpr std::uint8_t kTypeResponseBatch = 3;
/// Frame-type byte: one slice of a chunked (streaming) response.
inline constexpr std::uint8_t kTypeResponseChunk = 4;
/// Frame-type byte: health-check ping/pong (nonce echo).
inline constexpr std::uint8_t kTypePing = 5;
/// Frame-type byte: gateway metrics request/response.
inline constexpr std::uint8_t kTypeStats = 6;
/// Frame-type byte: model administration (load/unload/list), v4+.
inline constexpr std::uint8_t kTypeModelAdmin = 7;
/// Request flag: the client understands type-3 batched response frames.
inline constexpr std::uint8_t kFlagAcceptBatch = 0x01;
/// Request flag: the client understands type-4 chunked response frames.
inline constexpr std::uint8_t kFlagAcceptStream = 0x02;
/// Upper bound on a frame body (16 MiB): anything larger is rejected
/// before any allocation, so a hostile length field cannot OOM the server.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 24;
/// Upper bound on tensor rank in a frame.
inline constexpr std::size_t kMaxDims = 8;
/// Upper bound on a *reassembled* chunked response payload (1 GiB): the
/// per-frame cap applies to each chunk, this one to their sum.
inline constexpr std::size_t kMaxStreamBytes = std::size_t{1} << 30;

/// A decoded request frame (client -> gateway).
struct RequestFrame {
  std::uint64_t request_id = 0;  ///< Echoed verbatim in the response.
  DeadlineClass cls = DeadlineClass::kInteractive;  ///< Admission class.
  std::uint8_t flags = 0;         ///< kFlagAccept* capability bits.
  std::uint64_t deadline_us = 0;  ///< 0 = class default.
  std::string model_id;           ///< Registry name to route to.
  bnn::Tensor tensor;             ///< Request payload.
};

/// A decoded response frame (gateway -> client).
struct ResponseFrame {
  std::uint64_t request_id = 0;  ///< Matches the request.
  Status status = Status::kRejected;  ///< Terminal request status.
  double queue_us = 0.0;   ///< Result::queue_us.
  double total_us = 0.0;   ///< Result::total_us (end-to-end).
  bnn::Tensor tensor;      ///< Output; empty unless status == kOk.
};

/// One decoded type-4 chunk of a streaming response. The response header
/// (latencies + shape) rides only on chunk 0; every chunk carries a raw
/// byte slice of the payload slab. ChunkAssembler reassembles.
struct ChunkFrame {
  std::uint64_t request_id = 0;  ///< Matches the request.
  Status status = Status::kRejected;  ///< Terminal request status.
  std::uint32_t seq = 0;  ///< Chunk index, 0-based, strictly sequential.
  bool last = false;      ///< Final chunk of this response.
  double queue_us = 0.0;  ///< Valid on seq 0 only.
  double total_us = 0.0;  ///< Valid on seq 0 only.
  std::vector<std::size_t> shape;      ///< Valid on seq 0 only.
  std::vector<std::uint8_t> payload;   ///< Raw little-endian f64 bytes.
};

/// A decoded type-5 health-check frame. A ping (`pong == false`) is
/// answered with a pong carrying the same nonce; the sender matches
/// pongs to pings solely by that echoed nonce.
struct PingFrame {
  std::uint64_t nonce = 0;  ///< Echoed verbatim in the pong.
  bool pong = false;        ///< false = ping (query), true = pong (reply).
};

/// One model's slice of a type-6 stats response.
struct StatsModel {
  std::string id;                 ///< Registry name.
  std::uint64_t input_size = 0;   ///< Declared request width; 0 = unchecked.
  std::uint64_t queue_depth = 0;  ///< The model server's current backlog.
  std::uint64_t completed = 0;    ///< Requests the model completed.
};

/// A decoded type-6 stats frame. The request carries only an id; the
/// response echoes it plus a digest of the gateway's GatewaySnapshot --
/// enough for a balancer to weight replicas (queue depths) and to run
/// the admission-time shape gate client-side (per-model input_size).
struct StatsFrame {
  bool response = false;          ///< false = request, true = response.
  std::uint64_t request_id = 0;   ///< Echoed verbatim in the response.
  std::uint64_t submitted = 0;    ///< GatewaySnapshot::submitted.
  std::uint64_t completed = 0;    ///< GatewaySnapshot::completed.
  std::uint64_t rejected = 0;     ///< GatewaySnapshot::rejected.
  std::uint64_t deadline_exceeded = 0;  ///< Sum over classes.
  std::uint64_t errors = 0;       ///< kInternalError completions, summed.
  std::uint64_t invalid = 0;      ///< kInvalidArgument completions, summed.
  std::uint64_t queue_depth = 0;  ///< Admission-queue population, summed.
  /// Drift-monitor health (v3+): canary probes sent, probe rounds under
  /// the accuracy floor, online rewrites performed, and the duration of
  /// the latest rewrite. A balancer reads these to see a replica's
  /// crossbars age and recover.
  std::uint64_t canaries_sent = 0;
  std::uint64_t canary_failures = 0;   ///< Rounds below the floor.
  std::uint64_t rewrites = 0;          ///< Recalibrations performed.
  std::uint64_t rewrite_us_last = 0;   ///< Latest rewrite, microseconds.
  std::vector<StatsModel> models;  ///< Response only; sorted by id.
};

/// Model-administration operation carried by a type-7 frame.
enum class ModelAdminOp : std::uint8_t {
  kLoad = 0,    ///< Register `file` (relative to --model_dir) as `model_id`.
  kUnload = 1,  ///< Unregister `model_id`.
  kList = 2,    ///< Report the registered model ids.
};

/// A decoded type-7 model-admin frame (v4+). A load request names a .ebm
/// file *relative to the serving replica's --model_dir* -- never an
/// absolute path and never raw model bytes -- plus the registry id to
/// serve it under; unload names only the id; list names neither. The
/// response echoes the request's id and op, carries a terminal Status
/// with a human-readable message, and -- on success or for list -- the
/// replica's registered model ids, sorted.
struct ModelAdminFrame {
  bool response = false;          ///< false = request, true = response.
  std::uint64_t request_id = 0;   ///< Echoed verbatim in the response.
  ModelAdminOp op = ModelAdminOp::kList;  ///< What to do / what was done.
  std::string model_id;           ///< Registry name (load/unload).
  std::string file;               ///< .ebm name under --model_dir (load).
  Status status = Status::kOk;    ///< Response only: outcome.
  std::string message;            ///< Response only: error detail, "" on ok.
  std::vector<std::string> models;  ///< Response only: registered ids, sorted.
};

/// Decode outcome. Anything except kOk / kNeedMoreData means the frame is
/// invalid; `consumed` > 0 additionally means the frame boundary was
/// still recoverable (the caller may skip it and keep the stream).
enum class DecodeStatus {
  kOk = 0,        ///< One whole frame decoded; `consumed` bytes used.
  kNeedMoreData,  ///< Buffer holds only a frame prefix; read more.
  kBadMagic,      ///< Body does not start with kMagic (stream desync).
  kBadVersion,    ///< Version byte != kVersion.
  kBadType,       ///< Type byte is not the expected frame type.
  kTooLarge,      ///< Declared body length exceeds kMaxFrameBytes.
  kMalformed,     ///< Internally inconsistent body (lengths, class,
                  ///< status, rank, dims/payload mismatch).
};

/// Lower-case log name of a DecodeStatus.
[[nodiscard]] const char* to_string(DecodeStatus s);

/// Serializes a request frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const RequestFrame& req);
/// Serializes a response frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const ResponseFrame& resp);
/// Serializes a response frame's *body only* (no length prefix) -- the
/// unit a type-3 batched frame carries. frame_body() wraps it back into a
/// standalone type-2 frame.
[[nodiscard]] std::vector<std::uint8_t> encode_response_body(
    const ResponseFrame& resp);
/// Prepends the u32 length prefix to one encoded body.
[[nodiscard]] std::vector<std::uint8_t> frame_body(
    const std::vector<std::uint8_t>& body);
/// Builds one type-3 batched frame from 1..65535 encoded response bodies
/// (see encode_response_body). Throws eb::Error when the result would
/// exceed kMaxFrameBytes -- the caller splits the batch instead.
[[nodiscard]] std::vector<std::uint8_t> encode_response_batch(
    const std::vector<std::vector<std::uint8_t>>& bodies);
/// Splits one response into type-4 chunk frames of at most `chunk_bytes`
/// payload each (rounded down to whole f64s, minimum one). Always emits
/// at least one chunk; the final one carries the `last` flag.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_response_chunks(
    const ResponseFrame& resp, std::size_t chunk_bytes);

/// Decodes one request frame from the front of [data, data + size).
/// kOk: `out` is filled and `consumed` is the frame's full size.
/// kNeedMoreData: nothing consumed. Other statuses: the frame is bad;
/// `consumed` is its boundary when recoverable, else 0. On kMalformed,
/// `out.request_id` echoes the frame's id when the envelope through the
/// id field decoded cleanly (so the error response can be matched by a
/// pipelined client), else stays 0.
[[nodiscard]] DecodeStatus decode_request(const std::uint8_t* data,
                                          std::size_t size,
                                          RequestFrame& out,
                                          std::size_t& consumed);
/// Decodes one response frame; same contract as decode_request.
[[nodiscard]] DecodeStatus decode_response(const std::uint8_t* data,
                                           std::size_t size,
                                           ResponseFrame& out,
                                           std::size_t& consumed);
/// Decodes one type-3 batched frame into its member responses.
[[nodiscard]] DecodeStatus decode_response_batch(
    const std::uint8_t* data, std::size_t size,
    std::vector<ResponseFrame>& out, std::size_t& consumed);
/// Decodes one type-4 chunk frame.
[[nodiscard]] DecodeStatus decode_response_chunk(const std::uint8_t* data,
                                                 std::size_t size,
                                                 ChunkFrame& out,
                                                 std::size_t& consumed);
/// Serializes a ping/pong frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_ping(const PingFrame& ping);
/// Decodes one type-5 ping/pong frame; same contract as decode_request.
[[nodiscard]] DecodeStatus decode_ping(const std::uint8_t* data,
                                       std::size_t size, PingFrame& out,
                                       std::size_t& consumed);
/// Serializes a stats request or response (length prefix included). A
/// request (`stats.response == false`) carries only the id; the model
/// list and counters ride on responses.
[[nodiscard]] std::vector<std::uint8_t> encode_stats(const StatsFrame& stats);
/// Decodes one type-6 stats frame (either kind -- `out.response` tells
/// which); same contract as decode_request.
[[nodiscard]] DecodeStatus decode_stats(const std::uint8_t* data,
                                        std::size_t size, StatsFrame& out,
                                        std::size_t& consumed);
/// Serializes a model-admin request or response (length prefix included).
/// The status/message/models fields ride on responses only.
[[nodiscard]] std::vector<std::uint8_t> encode_model_admin(
    const ModelAdminFrame& admin);
/// Decodes one type-7 model-admin frame (either kind -- `out.response`
/// tells which); same contract as decode_request.
[[nodiscard]] DecodeStatus decode_model_admin(const std::uint8_t* data,
                                              std::size_t size,
                                              ModelAdminFrame& out,
                                              std::size_t& consumed);

/// Peeks the type byte of the frame at the front of [data, data + size)
/// without decoding the body -- how a pipelined client demultiplexes
/// type-2/3/4 response frames (plus pongs and stats responses), and how
/// the server side routes ping/stats frames interleaved with requests.
/// Validates the length prefix, magic and version; kOk fills `type_out`
/// (the frame may still fail its full decode later).
[[nodiscard]] DecodeStatus peek_type(const std::uint8_t* data,
                                     std::size_t size,
                                     std::uint8_t& type_out);

/// Reassembles type-4 chunk streams (any number of interleaved request
/// ids) back into whole ResponseFrames. Not internally locked.
class ChunkAssembler {
 public:
  /// Feeds one decoded chunk. Returns false on a protocol violation
  /// (out-of-sequence chunk, header-less first chunk, payload overflow,
  /// ragged final size) -- the stream for that id is then dropped.
  bool feed(const ChunkFrame& chunk);
  /// Responses completed by feed() so far; clears the ready list.
  [[nodiscard]] std::vector<ResponseFrame> take_ready();
  /// Ids with chunks received but the last chunk still outstanding.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  struct Partial {
    ResponseFrame header;
    std::vector<std::uint8_t> bytes;
    std::uint32_t next_seq = 0;
  };
  std::vector<std::pair<std::uint64_t, Partial>> pending_;
  std::vector<ResponseFrame> ready_;
};

}  // namespace eb::serve::wire
