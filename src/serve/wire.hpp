/// \file
/// \brief The gateway's framed wire protocol: length-prefixed binary
/// request/response frames with bounds-checked encode/decode.
///
/// Every frame is a 4-byte little-endian body length followed by the body:
///
///     ┌────────────┬─────────────────────────────────────────────────┐
///     │ u32 length │ body (length bytes)                             │
///     └────────────┴─────────────────────────────────────────────────┘
///     body (request, type = 1):
///     ┌───────────┬────────┬──────┬───────┬──────────┬───────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 1 │ u8 cls│ u8 rsvd  │ u64 request_id│
///     ├───────────┴───────┬┴──────┴───────┴─┬────────┴──┬────────────┤
///     │ u64 deadline_us   │ u16 id_len + id │ u8 ndims  │ u32 dims[] │
///     ├───────────────────┴─────────────────┴───────────┴────────────┤
///     │ f64 payload[prod(dims)]  (IEEE-754 bit pattern, LE)          │
///     └──────────────────────────────────────────────────────────────┘
///     body (response, type = 2):
///     ┌───────────┬────────┬──────┬───────────┬─────────┬────────────┐
///     │ u32 MAGIC │ u8 ver │ u8 2 │ u8 status │ u8 rsvd │ u64 req_id │
///     ├───────────┴────┬───┴──────┴─┬─────────┴─┬───────┴────────────┤
///     │ f64 queue_us   │ f64 total  │ u8 ndims  │ u32 dims[] + f64[] │
///     └────────────────┴────────────┴───────────┴────────────────────┘
///
/// All integers are little-endian; tensor payloads are raw IEEE-754
/// doubles, so a wire round trip is *byte-identical* to the in-process
/// result (the loopback test pins this). Decoding never trusts a length
/// field it has not bounds-checked: a truncated buffer yields
/// kNeedMoreData, a body over kMaxFrameBytes yields kTooLarge, and any
/// internally-inconsistent frame yields kMalformed with the frame's
/// boundary in `consumed` so a server can skip it and keep the
/// connection. serve::TcpFrontend is the socket loop behind this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bnn/tensor.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace eb::serve::wire {

/// Frame magic ("EBGW" read as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x57474245u;
/// Protocol version this build speaks.
inline constexpr std::uint8_t kVersion = 1;
/// Frame-type byte.
inline constexpr std::uint8_t kTypeRequest = 1;
/// Frame-type byte.
inline constexpr std::uint8_t kTypeResponse = 2;
/// Upper bound on a frame body (16 MiB): anything larger is rejected
/// before any allocation, so a hostile length field cannot OOM the server.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 24;
/// Upper bound on tensor rank in a frame.
inline constexpr std::size_t kMaxDims = 8;

/// A decoded request frame (client -> gateway).
struct RequestFrame {
  std::uint64_t request_id = 0;  ///< Echoed verbatim in the response.
  DeadlineClass cls = DeadlineClass::kInteractive;  ///< Admission class.
  std::uint64_t deadline_us = 0;  ///< 0 = class default.
  std::string model_id;           ///< Registry name to route to.
  bnn::Tensor tensor;             ///< Request payload.
};

/// A decoded response frame (gateway -> client).
struct ResponseFrame {
  std::uint64_t request_id = 0;  ///< Matches the request.
  Status status = Status::kRejected;  ///< Terminal request status.
  double queue_us = 0.0;   ///< Result::queue_us.
  double total_us = 0.0;   ///< Result::total_us (end-to-end).
  bnn::Tensor tensor;      ///< Output; empty unless status == kOk.
};

/// Decode outcome. Anything except kOk / kNeedMoreData means the frame is
/// invalid; `consumed` > 0 additionally means the frame boundary was
/// still recoverable (the caller may skip it and keep the stream).
enum class DecodeStatus {
  kOk = 0,        ///< One whole frame decoded; `consumed` bytes used.
  kNeedMoreData,  ///< Buffer holds only a frame prefix; read more.
  kBadMagic,      ///< Body does not start with kMagic (stream desync).
  kBadVersion,    ///< Version byte != kVersion.
  kBadType,       ///< Type byte is not the expected frame type.
  kTooLarge,      ///< Declared body length exceeds kMaxFrameBytes.
  kMalformed,     ///< Internally inconsistent body (lengths, class,
                  ///< status, rank, dims/payload mismatch).
};

/// Lower-case log name of a DecodeStatus.
[[nodiscard]] const char* to_string(DecodeStatus s);

/// Serializes a request frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const RequestFrame& req);
/// Serializes a response frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const ResponseFrame& resp);

/// Decodes one request frame from the front of [data, data + size).
/// kOk: `out` is filled and `consumed` is the frame's full size.
/// kNeedMoreData: nothing consumed. Other statuses: the frame is bad;
/// `consumed` is its boundary when recoverable, else 0.
[[nodiscard]] DecodeStatus decode_request(const std::uint8_t* data,
                                          std::size_t size,
                                          RequestFrame& out,
                                          std::size_t& consumed);
/// Decodes one response frame; same contract as decode_request.
[[nodiscard]] DecodeStatus decode_response(const std::uint8_t* data,
                                           std::size_t size,
                                           ResponseFrame& out,
                                           std::size_t& consumed);

}  // namespace eb::serve::wire
