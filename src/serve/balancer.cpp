#include "serve/balancer.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace eb::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

/// One routed request: the canonical frame (re-encoded per attempt), the
/// terminal callback and the retry bookkeeping. Exactly one attempt is
/// outstanding at a time, so the non-atomic fields are only ever touched
/// by the thread currently driving the flight (the submitter, then the
/// I/O thread of whichever replica just failed it).
struct Balancer::Flight {
  wire::RequestFrame req;
  Completion done;
  std::vector<bool> tried;
  std::size_t attempts = 0;
  std::atomic<bool> finished{false};
  Clock::time_point start{};
};

Balancer::Balancer(BalancerConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  EB_REQUIRE(!cfg_.replicas.empty(), "balancer needs at least one replica");
  if (cfg_.max_attempts == 0) {
    cfg_.max_attempts = cfg_.replicas.size();
  }
  clients_.reserve(cfg_.replicas.size());
  for (const auto& addr : cfg_.replicas) {
    ReplicaClientConfig ccfg = cfg_.client;
    ccfg.address = addr;
    clients_.push_back(std::make_unique<ReplicaClient>(ccfg));
  }
}

Balancer::~Balancer() { shutdown(); }

std::future<Result> Balancer::submit(const std::string& model,
                                     bnn::Tensor input, DeadlineClass cls,
                                     std::uint64_t deadline_us) {
  auto promise = std::make_shared<std::promise<Result>>();
  auto future = promise->get_future();
  submit_async(model, std::move(input), cls, deadline_us,
               [promise](Result r) { promise->set_value(std::move(r)); });
  return future;
}

void Balancer::submit_async(const std::string& model, bnn::Tensor input,
                            DeadlineClass cls, std::uint64_t deadline_us,
                            Completion done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto start = Clock::now();
  bool draining = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining = draining_;
  }
  if (draining) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Result r;
    r.status = Status::kRejected;
    r.total_us = us_since(start);
    done(std::move(r));
    return;
  }
  // The admission-time shape gate, run against the input_size the
  // replicas advertise over stats frames: a wrong-shaped request fails
  // here, exactly once, and never enters the retry loop -- a dead
  // replica must not turn a client mistake into max_attempts sends.
  const std::size_t want = known_input_size(model);
  if (want != 0 && input.size() != want) {
    shape_gated_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    Result r;
    r.status = Status::kInvalidArgument;
    r.total_us = us_since(start);
    done(std::move(r));
    return;
  }
  auto flight = std::make_shared<Flight>();
  flight->req.model_id = model;
  flight->req.cls = cls;
  flight->req.deadline_us = deadline_us;
  flight->req.tensor = std::move(input);
  flight->done = std::move(done);
  flight->tried.assign(clients_.size(), false);
  flight->start = start;
  dispatch(flight);
}

void Balancer::dispatch(const std::shared_ptr<Flight>& flight) {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (draining_) {
        break;
      }
    }
    if (flight->attempts >= cfg_.max_attempts) {
      break;
    }
    int idx = -1;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      idx = pick_replica(flight->tried);
    }
    if (idx < 0) {
      break;
    }
    flight->tried[static_cast<std::size_t>(idx)] = true;
    ++flight->attempts;
    if (flight->attempts > 1) {
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
    auto self = flight;
    const bool sent = clients_[static_cast<std::size_t>(idx)]->submit(
        flight->req,
        [this, self](wire::ResponseFrame resp) {
          Result r;
          r.status = resp.status;
          r.queue_us = resp.queue_us;
          if (resp.status == Status::kOk) {
            r.output = std::move(resp.tensor);
          }
          finish(self, std::move(r));
        },
        [this, self] {
          // Replica died with the request in flight: re-route. The
          // handler runs on the dead client's I/O thread, outside its
          // lock, so dialing a sibling from here is safe.
          dispatch(self);
        });
    if (sent) {
      return;
    }
    // The replica died between the pick and the send; its alive() flag
    // is already down, so the next iteration picks someone else (or
    // runs out of attempts/candidates and fails loudly below).
  }
  Result r;
  r.status = Status::kRejected;
  finish(flight, std::move(r));
}

int Balancer::pick_replica(const std::vector<bool>& tried) {
  // Candidates: live replicas not yet tried by this flight; when every
  // live replica was already tried (it died and came back), allow
  // re-tries -- the attempts cap still bounds the flight.
  std::vector<std::size_t> cand;
  cand.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i]->alive() && !tried[i]) {
      cand.push_back(i);
    }
  }
  if (cand.empty()) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->alive()) {
        cand.push_back(i);
      }
    }
  }
  if (cand.empty()) {
    return -1;
  }
  if (cand.size() == 1) {
    return static_cast<int>(cand[0]);
  }
  // Power of two choices: sample two distinct candidates, score each by
  // outstanding work (our in-flight + the replica's last reported
  // admission backlog), route to the lighter one.
  const std::size_t a = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(cand.size()) - 1));
  std::size_t b = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(cand.size()) - 2));
  if (b >= a) {
    ++b;
  }
  const auto score = [this](std::size_t i) {
    return static_cast<std::uint64_t>(clients_[i]->in_flight()) +
           clients_[i]->stats().queue_depth;
  };
  return static_cast<int>(score(cand[a]) <= score(cand[b]) ? cand[a]
                                                           : cand[b]);
}

void Balancer::finish(const std::shared_ptr<Flight>& flight, Result res) {
  if (flight->finished.exchange(true)) {
    return;
  }
  res.total_us = us_since(flight->start);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (res.status == Status::kRejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  flight->done(std::move(res));
}

void Balancer::fill_stats(wire::StatsFrame& out) {
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.invalid = shape_gated_.load(std::memory_order_relaxed);
  for (const auto& client : clients_) {
    if (!client->has_stats()) {
      continue;
    }
    const wire::StatsFrame s = client->stats();
    out.deadline_exceeded += s.deadline_exceeded;
    out.errors += s.errors;
    out.queue_depth += s.queue_depth;
    out.canaries_sent += s.canaries_sent;
    out.canary_failures += s.canary_failures;
    out.rewrites += s.rewrites;
    // A fleet has no single "last" rewrite; report the slowest replica's.
    out.rewrite_us_last = std::max(out.rewrite_us_last, s.rewrite_us_last);
    for (const auto& m : s.models) {
      auto it = std::find_if(out.models.begin(), out.models.end(),
                             [&](const wire::StatsModel& e) {
                               return e.id == m.id;
                             });
      if (it == out.models.end()) {
        out.models.push_back(m);
      } else {
        it->queue_depth += m.queue_depth;
        it->completed += m.completed;
        if (it->input_size == 0) {
          it->input_size = m.input_size;
        }
      }
    }
  }
  std::sort(out.models.begin(), out.models.end(),
            [](const wire::StatsModel& a, const wire::StatsModel& b) {
              return a.id < b.id;
            });
  for (const auto& client : clients_) {
    out.queue_depth += client->in_flight();
  }
}

wire::ModelAdminFrame Balancer::handle_model_admin(
    const wire::ModelAdminFrame& req) {
  wire::ModelAdminFrame resp;
  resp.response = true;
  resp.request_id = req.request_id;
  resp.op = req.op;
  resp.model_id = req.model_id;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      resp.status = Status::kRejected;
      resp.message = "balancer is shut down";
      return resp;
    }
  }
  // Fan out to every live replica; each ack (or connection death) ticks
  // the join counter on that client's I/O thread while this thread
  // blocks on the condition variable -- never a self-wait, since admin
  // ops only ever run on frontend/caller threads.
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    std::size_t deaths = 0;
    std::vector<wire::ModelAdminFrame> acks;
  };
  auto join = std::make_shared<Join>();
  std::size_t sent = 0;
  for (auto& client : clients_) {
    if (!client->alive()) {
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(join->mu);
      ++join->outstanding;
    }
    const bool queued = client->admin(
        req,
        [join](wire::ModelAdminFrame ack) {
          const std::lock_guard<std::mutex> lock(join->mu);
          join->acks.push_back(std::move(ack));
          --join->outstanding;
          join->cv.notify_all();
        },
        [join] {
          const std::lock_guard<std::mutex> lock(join->mu);
          ++join->deaths;
          --join->outstanding;
          join->cv.notify_all();
        });
    if (queued) {
      ++sent;
    } else {
      const std::lock_guard<std::mutex> lock(join->mu);
      --join->outstanding;  // raced a teardown: neither handler will run
    }
  }
  if (sent == 0) {
    resp.status = Status::kRejected;
    resp.message = "no live replica";
    return resp;
  }
  std::size_t timed_out = 0;
  {
    std::unique_lock<std::mutex> lock(join->mu);
    join->cv.wait_for(lock, std::chrono::milliseconds(cfg_.admin_timeout_ms),
                      [&] { return join->outstanding == 0; });
    timed_out = join->outstanding;
  }
  // Aggregate under join->mu-free reads: after the wait, every handler
  // that will ever run for a counted attempt has either run or is a
  // straggler we report as timed out (its late ack mutates only `join`,
  // which outlives this frame via the shared_ptr captures).
  std::vector<wire::ModelAdminFrame> acks;
  std::size_t deaths = 0;
  {
    const std::lock_guard<std::mutex> lock(join->mu);
    acks = join->acks;
    deaths = join->deaths;
  }
  resp.status = Status::kOk;
  std::size_t failures = 0;
  for (const auto& ack : acks) {
    if (ack.status != Status::kOk) {
      ++failures;
      if (resp.message.empty()) {
        resp.message = ack.message;
      }
    }
    for (const auto& id : ack.models) {
      resp.models.push_back(id);
    }
  }
  std::sort(resp.models.begin(), resp.models.end());
  resp.models.erase(std::unique(resp.models.begin(), resp.models.end()),
                    resp.models.end());
  if (failures > 0) {
    resp.status = Status::kInvalidArgument;
    resp.message = std::to_string(failures) + "/" + std::to_string(sent) +
                   " replicas failed: " + resp.message;
  } else if (deaths > 0 || timed_out > 0) {
    resp.status = Status::kInternalError;
    resp.message = std::to_string(deaths) + " replica connection(s) died, " +
                   std::to_string(timed_out) +
                   " timed out during the admin op";
  }
  return resp;
}

std::size_t Balancer::alive_replicas() const {
  std::size_t n = 0;
  for (const auto& client : clients_) {
    if (client->alive()) {
      ++n;
    }
  }
  return n;
}

std::size_t Balancer::known_input_size(const std::string& model) const {
  for (const auto& client : clients_) {
    if (!client->has_stats()) {
      continue;
    }
    const wire::StatsFrame s = client->stats();
    for (const auto& m : s.models) {
      if (m.id == model && m.input_size != 0) {
        return static_cast<std::size_t>(m.input_size);
      }
    }
  }
  return 0;
}

bool Balancer::wait_ready(std::size_t min_alive, std::uint32_t timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::size_t ready = 0;
    for (const auto& client : clients_) {
      if (client->alive() && client->has_stats()) {
        ++ready;
      }
    }
    if (ready >= min_alive) {
      return true;
    }
    if (Clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

BalancerSnapshot Balancer::metrics() const {
  BalancerSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shape_gated = shape_gated_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.replicas.reserve(clients_.size());
  for (const auto& client : clients_) {
    ReplicaSnapshot r;
    r.address = client->address();
    r.alive = client->alive();
    r.in_flight = client->in_flight();
    r.queue_depth =
        client->has_stats() ? client->stats().queue_depth : 0;
    const auto c = client->counters();
    r.requests = c.requests;
    r.deaths = c.deaths;
    s.replicas.push_back(std::move(r));
  }
  return s;
}

void Balancer::shutdown() {
  const std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // Each shutdown fails that client's in-flight requests through their
  // death handlers; the re-dispatch sees draining_ and finishes them
  // kRejected, so every accepted request still resolves.
  for (const auto& client : clients_) {
    client->shutdown();
  }
  joined_ = true;
}

}  // namespace eb::serve
