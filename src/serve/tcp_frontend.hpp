/// \file
/// \brief Loopback/LAN socket frontend for serve::Gateway: an accept loop
/// plus one reader thread per connection, speaking the framed wire
/// protocol in serve/wire.hpp.
///
/// Lifecycle per connection: read bytes into a reassembly buffer, peel
/// whole frames off the front, decode each with the bounds-checked
/// wire::decode_request, and hand good requests to
/// Gateway::submit_async. The completion callback encodes the response
/// frame and writes it back under the connection's write lock -- worker
/// threads complete requests out of order, so responses carry the
/// request's echoed id rather than arriving in request order.
///
/// Malformed traffic never crashes the frontend: bad content inside a
/// well-formed envelope (wire::DecodeStatus::kMalformed with a known
/// frame boundary) is answered with a kInvalidArgument response and
/// skipped; anything that desyncs the byte stream (bad magic / version /
/// type, oversize length) gets the same error response and then the
/// connection is closed, because nothing after it can be trusted. Either
/// way the accept loop keeps serving other connections.
///
/// Scope: this is the test/bench transport (loopback TCP, a few dozen
/// connections), not a hardened internet-facing server -- connections are
/// plain TCP, per-connection threads, no TLS, no auth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/gateway.hpp"

namespace eb::serve {

/// Listener knobs.
struct TcpFrontendConfig {
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad.
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port().
  int backlog = 16;        ///< listen(2) backlog.
  /// SO_SNDTIMEO on accepted sockets: a response write blocked longer
  /// than this (client stopped reading, receive window full) marks the
  /// connection dead and drops its responses, instead of stalling the
  /// model-server worker thread the completion callback runs on. 0 =
  /// block forever (not recommended beyond single-client tests).
  std::uint32_t send_timeout_ms = 2000;
};

/// The socket frontend. Constructing it binds + listens + starts the
/// accept loop; the gateway must outlive it.
class TcpFrontend {
 public:
  /// Binds and starts serving `gateway`. Throws eb::Error when the
  /// socket cannot be created/bound.
  explicit TcpFrontend(Gateway& gateway, TcpFrontendConfig cfg = {});
  /// Graceful: shutdown() if still running.
  ~TcpFrontend();

  TcpFrontend(const TcpFrontend&) = delete;             ///< Owns threads.
  TcpFrontend& operator=(const TcpFrontend&) = delete;  ///< Owns threads.

  /// The bound TCP port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Frontend counters (monotonic, internally synchronized).
  struct Stats {
    std::size_t connections = 0;  ///< Accepted connections.
    std::size_t requests = 0;     ///< Well-formed request frames.
    std::size_t responses = 0;    ///< Response frames written.
    std::size_t malformed = 0;    ///< Rejected frames (both kinds).
  };
  [[nodiscard]] Stats stats() const;

  /// Stops accepting, unblocks every connection reader and joins all
  /// threads. In-flight gateway requests still complete; their responses
  /// are dropped (the socket is gone). Idempotent.
  void shutdown();

 private:
  struct Connection;  // defined in tcp_frontend.cpp
  struct Shared;      // stats block, outlives the frontend via callbacks

  void accept_loop(int listen_fd);
  void reader_loop(std::shared_ptr<Connection> conn);

  Gateway& gateway_;
  TcpFrontendConfig cfg_;
  std::shared_ptr<Shared> shared_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::mutex mu_;  // connection/thread registry
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  std::thread acceptor_;
  bool stopping_ = false;
  std::mutex join_mu_;
  bool joined_ = false;
};

}  // namespace eb::serve
