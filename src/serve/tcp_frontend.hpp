/// \file
/// \brief Event-driven socket frontend for serve::Gateway (or any
/// WireService): epoll loops over nonblocking sockets, speaking the
/// framed wire protocol in serve/wire.hpp with full request pipelining,
/// ping health checks and stats export.
///
/// Architecture: `cfg.event_loops` threads each run an epoll(7) loop.
/// Loop 0 owns the listening socket and accepts until EAGAIN; accepted
/// connections are set nonblocking and assigned round-robin across the
/// loops. Reads happen on the owning loop thread into a per-connection
/// reassembly buffer with a read cursor (compacted periodically, not
/// per-recv), whole frames are peeled off and decoded with the
/// bounds-checked wire::decode_request, and good requests go to
/// WireService::submit_async (a Gateway, via the adapter, or a
/// Balancer). The completion callback -- running on a
/// model-server worker thread, possibly out of request order -- encodes
/// the response and appends it to the connection's outbound queue, then
/// wakes the owning loop via an eventfd; the loop flushes with
/// nonblocking send(2), arming EPOLLOUT only while the socket's buffer
/// is full. Responses therefore carry the request's echoed id and a
/// pipelined client matches them solely by that id (see the pipelining
/// contract in serve/wire.hpp).
///
/// Backpressure replaces the old blocking send + SO_SNDTIMEO: a client
/// that stops reading accumulates bytes in its outbound queue until
/// `max_write_queue_bytes` (connection killed, `overflow_kills`) or
/// until no byte leaves the socket for `write_stall_timeout_ms`
/// (connection killed, `stall_kills`). Worker threads never block on a
/// slow client either way.
///
/// Malformed traffic never crashes the frontend: bad content inside a
/// well-formed envelope (wire::DecodeStatus::kMalformed with a known
/// frame boundary) is answered with a kInvalidArgument response --
/// echoing the offending frame's id whenever the envelope decoded
/// through the id field -- and skipped; anything that desyncs the byte
/// stream (bad magic / version / type, oversize length) gets an error
/// response with id 0 and then the connection is flushed and closed,
/// because nothing after it can be trusted.
///
/// Besides type-1 requests a connection may interleave type-5 pings
/// (answered inline on the loop thread with a pong echoing the nonce --
/// the health probe serve::Balancer uses to mark replicas dead), type-6
/// stats requests (answered with the service's stats digest) and type-7
/// model-admin requests (load/unload/list, answered with the service's
/// WireService::handle_model_admin). All are served even while the
/// gateway is saturated, since none enters the admission queues.
///
/// Scope: loopback/LAN transport for tests and benches (now C10K-capable
/// -- see bench/frontend_load.cpp), still plain TCP, no TLS, no auth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/gateway.hpp"
#include "serve/wire.hpp"

namespace eb::serve {

/// What a TcpFrontend serves: anything that can take an async request
/// and describe itself in a stats frame. Gateway is the canonical
/// implementation (via the adapting TcpFrontend constructor);
/// serve::Balancer implements it too, so a balancer tier is fronted by
/// the exact same socket machinery as a replica.
class WireService {
 public:
  virtual ~WireService() = default;
  /// Submits one request; `done` must run exactly once with the
  /// terminal Result (same contract as Gateway::submit_async).
  virtual void submit_async(const std::string& model, bnn::Tensor input,
                            DeadlineClass cls, std::uint64_t deadline_us,
                            Completion done) = 0;
  /// Fills `out` with the service's current counters + model list. The
  /// caller has already set `out.request_id` and `out.response`.
  virtual void fill_stats(wire::StatsFrame& out) = 0;
  /// Answers one type-7 model-admin request (load/unload/list) inline;
  /// `req.response` is false and the returned frame must echo the
  /// request's id and op with `response = true`. The base implementation
  /// declines every op with kInvalidArgument; Gateway-backed services
  /// and serve::Balancer override it.
  virtual wire::ModelAdminFrame handle_model_admin(
      const wire::ModelAdminFrame& req);
};

/// Adapts a Gateway to the WireService interface: submit_async forwards
/// verbatim, fill_stats digests Gateway::metrics() into a wire frame.
class GatewayWireService final : public WireService {
 public:
  /// The gateway must outlive the adapter.
  explicit GatewayWireService(Gateway& gateway) : gateway_(gateway) {}
  void submit_async(const std::string& model, bnn::Tensor input,
                    DeadlineClass cls, std::uint64_t deadline_us,
                    Completion done) override;
  void fill_stats(wire::StatsFrame& out) override;
  /// load resolves against the gateway's cfg.model_dir (Gateway::
  /// load_model); unload maps to unregister_model; list reports
  /// model_ids(). Every response carries the post-op model list.
  wire::ModelAdminFrame handle_model_admin(
      const wire::ModelAdminFrame& req) override;

 private:
  Gateway& gateway_;
};

/// Listener knobs.
struct TcpFrontendConfig {
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad.
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port().
  int backlog = 128;       ///< listen(2) backlog.
  /// Number of epoll event-loop threads. Loop 0 also accepts; accepted
  /// connections are spread round-robin. 1 is right for loopback tests;
  /// bump for multi-NIC / many-core fan-in.
  std::size_t event_loops = 1;
  /// Kill a connection once its outbound queue (encoded, unsent
  /// response bytes) exceeds this. Bounds memory per slow client.
  std::size_t max_write_queue_bytes = std::size_t{32} << 20;
  /// Kill a connection when it has pending outbound bytes but the
  /// socket has accepted none of them for this long (client stopped
  /// reading and its receive window is full). 0 = never.
  std::uint32_t write_stall_timeout_ms = 2000;
  /// Payload bytes per type-4 chunk when streaming large responses to
  /// kFlagAcceptStream clients (responses above this size are chunked).
  std::size_t stream_chunk_bytes = std::size_t{256} << 10;
};

/// The socket frontend. Constructing it binds + listens + starts the
/// event loops; the gateway (or service) must outlive it.
class TcpFrontend {
 public:
  /// Binds and starts serving `gateway` (via an internally-owned
  /// GatewayWireService). Throws eb::Error when the socket cannot be
  /// created/bound.
  explicit TcpFrontend(Gateway& gateway, TcpFrontendConfig cfg = {});
  /// Binds and starts serving an arbitrary WireService (how a
  /// serve::Balancer exposes itself over the wire).
  explicit TcpFrontend(WireService& service, TcpFrontendConfig cfg = {});
  /// Graceful: shutdown() if still running.
  ~TcpFrontend();

  TcpFrontend(const TcpFrontend&) = delete;             ///< Owns threads.
  TcpFrontend& operator=(const TcpFrontend&) = delete;  ///< Owns threads.

  /// The bound TCP port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Frontend counters (monotonic; relaxed atomics snapshotted, so one
  /// snapshot may be skewed by in-flight increments but each counter is
  /// exact once traffic quiesces).
  struct Stats {
    std::size_t connections = 0;  ///< Accepted connections (lifetime).
    std::size_t requests = 0;     ///< Well-formed request frames.
    std::size_t responses = 0;    ///< Response frames written or queued.
    std::size_t malformed = 0;    ///< Rejected frames (both kinds).
    std::size_t pings = 0;        ///< Type-5 pings answered with pongs.
    std::size_t stats_requests = 0;  ///< Type-6 stats requests answered.
    std::size_t admin_requests = 0;  ///< Type-7 admin requests answered.
    std::size_t batched_frames = 0;   ///< Type-3 frames flushed.
    std::size_t chunked_responses = 0;  ///< Responses streamed as chunks.
    std::size_t bytes_read = 0;       ///< Raw bytes received.
    std::size_t bytes_written = 0;    ///< Raw bytes sent.
    std::size_t overflow_kills = 0;   ///< Connections killed: queue cap.
    std::size_t stall_kills = 0;      ///< Connections killed: write stall.
    std::size_t dropped_responses = 0;  ///< Completions after close.
  };
  [[nodiscard]] Stats stats() const;

  /// Connections currently registered with the event loops. Closed
  /// connections leave this count on close (not lazily on the next
  /// accept), so an idle listener with churned clients returns to 0.
  [[nodiscard]] std::size_t open_connections() const;

  /// Stops accepting, closes every connection (failing its queued
  /// responses -- counted in `dropped_responses`) and joins the loop
  /// threads. In-flight gateway requests still complete; their late
  /// completions are dropped the same way. Idempotent.
  void shutdown();

 private:
  struct Shared;      // stats + config, outlives the frontend via callbacks
  struct Connection;  // defined in tcp_frontend.cpp
  struct LoopShared;  // per-loop wakeup state shared with callbacks
  class Loop;         // one epoll loop: fd registry + thread body

  /// Shared ctor body: bind + listen + start the event loops.
  void start(TcpFrontendConfig cfg);

  /// Set (and owned) only by the Gateway convenience constructor.
  std::unique_ptr<WireService> owned_service_;
  WireService& service_;
  std::shared_ptr<Shared> shared_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::mutex join_mu_;
  bool joined_ = false;
};

}  // namespace eb::serve
