#include "serve/server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace eb::serve {

namespace {

double to_us(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kRejected:
      return "rejected";
    case Status::kInternalError:
      return "internal_error";
    case Status::kInvalidArgument:
      return "invalid_argument";
  }
  EB_UNREACHABLE("unknown serve::Status");
}

void Server::validate_config() const {
  EB_REQUIRE(cfg_.max_batch >= 1, "max_batch must be >= 1");
  EB_REQUIRE(cfg_.workers >= 1, "need at least one worker");
  EB_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be >= 1");
}

Server::Server(const bnn::Network& net, ServerConfig cfg)
    : cfg_(cfg),
      owned_pool_(std::make_unique<ThreadPool>(cfg.pool_threads)),
      pool_(owned_pool_.get()) {
  validate_config();
  bnn::BatchRunnerConfig rcfg;
  rcfg.batch_size = cfg_.max_batch;  // one GEMM batch per dispatched batch
  runners_.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    runners_.push_back(std::make_unique<bnn::BatchRunner>(net, *pool_, rcfg));
  }
  start_workers();
}

Server::Server(BatchHandler handler, ServerConfig cfg)
    : cfg_(cfg),
      owned_pool_(std::make_unique<ThreadPool>(cfg.pool_threads)),
      pool_(owned_pool_.get()),
      handler_(std::move(handler)) {
  EB_REQUIRE(handler_ != nullptr, "handler must be callable");
  validate_config();
  start_workers();
}

Server::Server(const bnn::Network& net, ThreadPool& shared_pool,
               ServerConfig cfg)
    : cfg_(cfg), pool_(&shared_pool) {
  validate_config();
  bnn::BatchRunnerConfig rcfg;
  rcfg.batch_size = cfg_.max_batch;
  runners_.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    runners_.push_back(std::make_unique<bnn::BatchRunner>(net, *pool_, rcfg));
  }
  start_workers();
}

Server::Server(BatchHandler handler, ThreadPool& shared_pool,
               ServerConfig cfg)
    : cfg_(cfg), pool_(&shared_pool), handler_(std::move(handler)) {
  EB_REQUIRE(handler_ != nullptr, "handler must be callable");
  validate_config();
  start_workers();
}

Server::~Server() { shutdown(); }

void Server::fulfil(Pending& r, Result res) {
  if (r.done) {
    r.done(std::move(res));
  } else {
    r.promise.set_value(std::move(res));
  }
}

void Server::start_workers() {
  workers_.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

std::future<Result> Server::submit(bnn::Tensor input) {
  return submit(std::move(input), cfg_.default_deadline_us);
}

std::future<Result> Server::submit(bnn::Tensor input,
                                   std::uint64_t deadline_us) {
  return enqueue(std::move(input), deadline_us, nullptr,
                 /*want_future=*/true);
}

void Server::submit_async(bnn::Tensor input, std::uint64_t deadline_us,
                          Completion done) {
  EB_REQUIRE(done != nullptr, "submit_async needs a completion callback");
  (void)enqueue(std::move(input), deadline_us, std::move(done),
                /*want_future=*/false);
}

std::future<Result> Server::enqueue(bnn::Tensor input,
                                    std::uint64_t deadline_us,
                                    Completion done, bool want_future) {
  Pending r;
  r.input = std::move(input);
  r.done = std::move(done);
  std::future<Result> fut;
  if (want_future) {
    fut = r.promise.get_future();
  }
  bool accepted = false;
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!draining_ && queue_.size() < cfg_.queue_capacity) {
      // Timestamp under the lock: queue order == enqueue-time order, the
      // invariant the window prefix scan (and window 0's serve-singly
      // guarantee) relies on when submitters race.
      r.enqueue = clk().now();
      r.deadline = deadline_us == 0
                       ? Clock::time_point::max()
                       : r.enqueue + std::chrono::microseconds(deadline_us);
      queue_.push_back(std::move(r));
      depth = queue_.size();
      accepted = true;
    }
  }
  if (accepted) {
    metrics_.record_submitted(depth);
    // notify_all, not notify_one: workers wait on cv_ under two different
    // predicates (idle vs window wait_until), and a single token handed
    // to the "wrong" one costs a window of latency. Worker counts are
    // small, so the extra wakeups are noise next to the batch work.
    cv_.notify_all();
  } else {
    // Backpressure / post-shutdown: the caller still gets a fulfilled
    // future, just not an answer.
    metrics_.record_rejected();
    Result res;
    res.status = Status::kRejected;
    fulfil(r, std::move(res));
  }
  return fut;
}

void Server::worker_loop(std::size_t worker_idx) {
  std::vector<Pending> batch;
  while (form_batch(batch)) {
    if (cfg_.on_dequeue) {
      cfg_.on_dequeue();  // queue capacity freed: external feeders may top up
    }
    serve_batch(worker_idx, std::move(batch));
    batch.clear();
  }
}

bool Server::form_batch(std::vector<Pending>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) {
      return false;  // draining and fully drained
    }
    // The batch is anchored on the current oldest request; it closes at
    // max_batch or when that request's window expires. Anything the front
    // changes under us (another worker popped it) we just recompute.
    const auto close =
        queue_.front().enqueue +
        std::chrono::microseconds(cfg_.batching_window_us);
    std::size_t live = 0;
    if (draining_) {
      // Drain fast: no window waits, full batches.
      live = std::min(queue_.size(), cfg_.max_batch);
    } else {
      // Only requests that arrived within the window of the oldest member
      // join its batch (FIFO -> a queue prefix). Window 0 degenerates to
      // singleton batches: the no-coalescing baseline.
      while (live < queue_.size() && live < cfg_.max_batch &&
             queue_[live].enqueue <= close) {
        ++live;
      }
    }
    if (live >= cfg_.max_batch || draining_ || clk().now() >= close) {
      batch.clear();
      batch.reserve(live);
      for (std::size_t i = 0; i < live; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (!queue_.empty()) {
        cv_.notify_all();  // the remainder may already form the next batch
      }
      return true;
    }
    // Under-full batch inside its window: sleep until the window closes or
    // an arrival / drain notification re-evaluates the policy. The wait
    // goes through the injected clock so a VirtualClock can expire the
    // window without wall time passing.
    clk().wait_until(lock, cv_, close);
  }
}

void Server::serve_batch(std::size_t worker_idx, std::vector<Pending> batch) {
  const auto formed = clk().now();
  // Deadline gate at batch formation: expired requests complete here with
  // kDeadlineExceeded and never occupy GEMM space.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& r : batch) {
    if (formed >= r.deadline) {
      Result res;
      res.status = Status::kDeadlineExceeded;
      res.queue_us = to_us(formed - r.enqueue);
      res.total_us = res.queue_us;
      metrics_.record_deadline_exceeded();
      fulfil(r, std::move(res));
    } else {
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) {
    return;
  }
  metrics_.record_batch(live.size());
  std::vector<bnn::Tensor> inputs;
  inputs.reserve(live.size());
  for (auto& r : live) {
    inputs.push_back(std::move(r.input));
  }
  std::vector<bnn::Tensor> outputs;
  try {
    if (!runners_.empty()) {
      outputs = runners_[worker_idx]->forward_all(inputs);
    } else {
      outputs = handler_(std::span<const bnn::Tensor>(inputs), *pool_);
    }
    EB_ASSERT(outputs.size() == live.size(),
              "batch handler must produce one output per input");
  } catch (...) {
    // A failing batch fails every request in it. Future-mode requests
    // carry the handler's exception; callback-mode requests (which have
    // no exception channel) complete with kInternalError.
    const auto err = std::current_exception();
    for (auto& r : live) {
      if (r.done) {
        Result res;
        res.status = Status::kInternalError;
        r.done(std::move(res));
      } else {
        r.promise.set_exception(err);
      }
    }
    return;
  }
  const auto done = clk().now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    Result res;
    res.status = Status::kOk;
    res.output = std::move(outputs[i]);
    res.queue_us = to_us(formed - live[i].enqueue);
    res.total_us = to_us(done - live[i].enqueue);
    res.batch_size = live.size();
    metrics_.record_completed(res.total_us);
    fulfil(live[i], std::move(res));
  }
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  const std::lock_guard<std::mutex> lock(join_mu_);
  if (!joined_) {
    for (auto& t : workers_) {
      t.join();
    }
    joined_ = true;
  }
}

MetricsSnapshot Server::metrics() const {
  return metrics_.snapshot(queue_depth());
}

std::size_t Server::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace eb::serve
