// Design-space exploration of oPCM VCores -- the study the paper leaves as
// future work (section VI-C: "a study that can freely explore this design
// space is encouraged").
//
// Sweeps WDM capacity x crossbar size x ADC provisioning, evaluates the
// MlBench average latency/energy, checks each point against the optical
// link budget (can the receiver still resolve one PCM cell at that channel
// count?), and prints the Pareto frontier.
//
//   ./build/examples/design_space
#include <cstdio>

#include <vector>

#include "bnn/model_zoo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "device/pcm.hpp"
#include "eval/experiments.hpp"
#include "photonics/link_budget.hpp"

namespace {

struct DesignPoint {
  std::size_t k = 0;
  std::size_t dim = 0;
  std::size_t adcs = 0;
  double avg_latency_us = 0.0;
  double avg_energy_nj = 0.0;
  bool link_feasible = false;
};

}  // namespace

int main() {
  using namespace eb;
  const auto nets = bnn::mlbench_specs();
  const dev::OpcmParams opcm = dev::OpcmParams::ideal();

  phot::LinkBudgetParams lb = phot::LinkBudgetParams::defaults();
  lb.receiver_noise_floor_mw = 2e-4;
  const phot::LinkBudget budget(phot::TransmitterParams::defaults(), lb);

  std::vector<DesignPoint> points;
  for (const std::size_t dim : {256u, 512u, 1024u}) {
    for (const std::size_t k : {4u, 8u, 16u, 32u}) {
      for (const std::size_t adcs : {32u, 64u, 128u}) {
        arch::TechParams p = arch::TechParams::paper_defaults();
        p.dims = {dim, dim};
        p.wdm_capacity = k;
        p.adcs_per_xbar = adcs;
        const arch::CostModel model(p);
        StatAccumulator lat;
        StatAccumulator en;
        for (const auto& net : nets) {
          const auto c = model.evaluate(arch::Design::EinsteinBarrier, net);
          lat.add(ns_to_us(c.latency_ns));
          en.add(pj_to_nj(c.energy_pj));
        }
        DesignPoint pt;
        pt.k = k;
        pt.dim = dim;
        pt.adcs = adcs;
        pt.avg_latency_us = lat.mean();
        pt.avg_energy_nj = en.mean();
        pt.link_feasible =
            budget.evaluate(k, dim, opcm.t_amorphous, opcm.t_crystalline)
                .feasible;
        points.push_back(pt);
      }
    }
  }

  Table t({"K", "crossbar", "ADCs", "avg latency (us)", "avg energy (nJ)",
           "link budget", "Pareto"});
  std::size_t pareto_count = 0;
  for (const auto& pt : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (!other.link_feasible) {
        continue;
      }
      if (other.avg_latency_us <= pt.avg_latency_us &&
          other.avg_energy_nj <= pt.avg_energy_nj &&
          (other.avg_latency_us < pt.avg_latency_us ||
           other.avg_energy_nj < pt.avg_energy_nj)) {
        dominated = true;
        break;
      }
    }
    const bool pareto = pt.link_feasible && !dominated;
    pareto_count += pareto ? 1 : 0;
    t.add_row({std::to_string(pt.k),
               std::to_string(pt.dim) + "x" + std::to_string(pt.dim),
               std::to_string(pt.adcs), Table::num(pt.avg_latency_us, 3),
               Table::num(pt.avg_energy_nj, 1),
               pt.link_feasible ? "ok" : "INFEASIBLE",
               pareto ? "*" : ""});
  }

  std::puts("== oPCM VCore design-space exploration (paper section VI-C) ==");
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n%zu Pareto-optimal feasible points (*). Larger K buys conv"
              "\nlatency until the link budget starves each wavelength;"
              "\nlarger arrays help until ADC sharing dominates the pass"
              "\ntime.\n",
              pareto_count);

  // Feasible-K boundary per the link budget, independent of workloads.
  Table kmax({"crossbar rows", "max feasible K (link budget)"});
  for (const std::size_t dim : {128u, 256u, 512u, 1024u}) {
    kmax.add_row({std::to_string(dim),
                  std::to_string(budget.max_feasible_k(
                      64, dim, opcm.t_amorphous, opcm.t_crystalline))});
  }
  std::printf("\n%s", kmax.render().c_str());
  return 0;
}
