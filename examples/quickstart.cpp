// Quickstart: train a small BNN, compile it onto EinsteinBarrier, run one
// sample, and print what the accelerator did.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "arch/machine.hpp"
#include "bnn/dataset.hpp"
#include "bnn/trainer.hpp"
#include "compiler/compiler.hpp"

int main() {
  using namespace eb;

  // 1. Train a binarized MLP on the synthetic MNIST stand-in.
  bnn::TrainerConfig tcfg;
  tcfg.dims = {784, 128, 64, 10};
  tcfg.epochs = 3;
  tcfg.train_samples = 1000;
  bnn::MlpTrainer trainer(tcfg);
  bnn::SyntheticMnist data(42);
  trainer.train(data);
  const bnn::Network net = trainer.export_network("quickstart-mlp");
  std::printf("trained  : held-out accuracy %.1f%%\n",
              100.0 * trainer.evaluate(data, 50000, 200));

  // 2. Compile the binarized core onto an oPCM EinsteinBarrier machine.
  arch::MachineConfig mcfg;  // defaults: 1 node, 4 tiles, oPCM VCores
  const comp::MlpCompiler compiler(mcfg);
  const comp::CompiledMlp compiled = compiler.compile(net);
  std::printf("compiled : %zu instructions, %zu weight tiles, %zu tables\n",
              compiled.program.instruction_count(),
              compiled.program.images.size(),
              compiled.program.tables.size());

  // 3. Run one sample and compare with the reference network.
  arch::Machine machine(mcfg);
  const bnn::Sample sample = data.sample(60000);
  const comp::MlpRun run =
      comp::run_mlp_on_machine(machine, compiled, net, {sample.image});

  std::printf("sample   : label %zu, reference predicts %zu, machine %zu\n",
              sample.label, net.predict(sample.image), run.predictions[0]);
  std::printf("machine  : %.0f ns critical path, %zu VMM / %zu MMM ops\n",
              run.stats.latency_ns, run.stats.vmm_ops, run.stats.mmm_ops);
  std::printf("energy   :\n%s", run.stats.energy.report().c_str());
  return 0;
}
