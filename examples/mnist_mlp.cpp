// End-to-end MLP study: trains MLP-S (784-500-250-10, the paper's MlBench
// configuration), deploys its binarized core on all three CIM designs, and
// reports (a) that accuracy is identical everywhere -- paper section V-C:
// the mappings "simply accelerate" the same arithmetic -- and (b) the
// modeled latency/energy of each design for this network.
//
//   ./build/examples/mnist_mlp [train_samples=2000] [epochs=4] [eval=300]
#include <cstdio>

#include "arch/cost_model.hpp"
#include "arch/machine.hpp"
#include "baselines/baseline_epcm.hpp"
#include "bnn/batch_runner.hpp"
#include "bnn/dataset.hpp"
#include "bnn/trainer.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "compiler/compiler.hpp"

int main(int argc, char** argv) {
  using namespace eb;
  const Config cfg = Config::from_args(argc, argv);
  const auto train_samples =
      static_cast<std::size_t>(cfg.get_int("train_samples", 2000));
  const auto epochs = static_cast<std::size_t>(cfg.get_int("epochs", 4));
  const auto eval_count = static_cast<std::size_t>(cfg.get_int("eval", 300));

  // ---- train MLP-S ------------------------------------------------------
  bnn::TrainerConfig tcfg;
  tcfg.dims = {784, 500, 250, 10};
  tcfg.epochs = epochs;
  tcfg.train_samples = train_samples;
  tcfg.learning_rate = 0.01;
  bnn::MlpTrainer trainer(tcfg);
  bnn::SyntheticMnist data(42);
  std::printf("training MLP-S on %zu synthetic digits, %zu epochs...\n",
              train_samples, epochs);
  const bnn::TrainResult tr = trainer.train(data);
  std::printf("  final train loss %.3f, train accuracy %.1f%%\n",
              tr.final_train_loss, 100.0 * tr.train_accuracy);
  const bnn::Network net = trainer.export_network("MLP-S");

  // ---- deploy on the three designs --------------------------------------
  arch::MachineConfig eb_cfg;  // oPCM EinsteinBarrier
  arch::MachineConfig tm_cfg;  // ePCM TacitMap machine
  tm_cfg.optical = false;
  const comp::MlpCompiler eb_compiler(eb_cfg);
  const comp::MlpCompiler tm_compiler(tm_cfg);
  const comp::CompiledMlp eb_prog = eb_compiler.compile(net);
  const comp::CompiledMlp tm_prog = tm_compiler.compile(net);
  arch::Machine eb_machine(eb_cfg);
  arch::Machine tm_machine(tm_cfg);
  const base::BaselineEpcmEngine baseline(net, map::CustBinaryConfig{},
                                          arch::TechParams::paper_defaults());

  std::size_t ref_correct = 0;
  std::size_t eb_correct = 0;
  std::size_t tm_correct = 0;
  std::size_t base_correct = 0;
  std::size_t disagreements = 0;
  std::vector<std::size_t> ref_preds(eval_count);
  const auto eval_samples = data.batch(100000, eval_count);
  for (std::size_t i = 0; i < eval_count; ++i) {
    const bnn::Sample& s = eval_samples[i];
    const std::size_t ref = net.predict(s.image);
    ref_preds[i] = ref;
    const auto eb_run =
        comp::run_mlp_on_machine(eb_machine, eb_prog, net, {s.image});
    const auto tm_run =
        comp::run_mlp_on_machine(tm_machine, tm_prog, net, {s.image});
    const auto base_run = baseline.run(s.image);
    ref_correct += (ref == s.label);
    eb_correct += (eb_run.predictions[0] == s.label);
    tm_correct += (tm_run.predictions[0] == s.label);
    base_correct += (base_run.predictions[0] == s.label);
    if (eb_run.predictions[0] != ref || tm_run.predictions[0] != ref ||
        base_run.predictions[0] != ref) {
      ++disagreements;
    }
  }

  Table acc({"engine", "held-out accuracy"});
  const auto pct = [&](std::size_t c) {
    return Table::num(100.0 * static_cast<double>(c) /
                          static_cast<double>(eval_count),
                      1) +
           " %";
  };
  acc.add_row({"reference (packed-kernel)", pct(ref_correct)});
  acc.add_row({"EinsteinBarrier machine (oPCM)", pct(eb_correct)});
  acc.add_row({"TacitMap machine (ePCM)", pct(tm_correct)});
  acc.add_row({"Baseline-ePCM engine (CustBinaryMap)", pct(base_correct)});
  std::printf("\n== accuracy over %zu held-out samples ==\n%s", eval_count,
              acc.render().c_str());
  std::printf("prediction disagreements vs reference: %zu (paper V-C: the"
              " mappings do not change accuracy)\n",
              disagreements);

  // ---- batched engine throughput on the same evaluation ------------------
  {
    const long long batch_arg = cfg.get_int("batch", 64);
    const long long threads_arg = cfg.get_int("threads", 0);
    if (batch_arg < 1 || threads_arg < 0) {
      std::fprintf(stderr, "batch must be >= 1 and threads >= 0\n");
      return 1;
    }
    bnn::BatchRunnerConfig bcfg;
    bcfg.batch_size = static_cast<std::size_t>(batch_arg);
    bcfg.threads = static_cast<std::size_t>(threads_arg);
    const bnn::BatchRunner runner(net, bcfg);
    std::vector<bnn::Tensor> inputs;
    inputs.reserve(eval_samples.size());
    for (const auto& s : eval_samples) {
      inputs.push_back(s.image);
    }
    const auto batched_preds = runner.predict_all(inputs);
    std::size_t batched_correct = 0;
    std::size_t batched_mismatch = 0;
    for (std::size_t i = 0; i < eval_samples.size(); ++i) {
      batched_correct += (batched_preds[i] == eval_samples[i].label);
      batched_mismatch += (batched_preds[i] != ref_preds[i]);
    }
    const auto& stats = runner.last_stats();
    std::printf(
        "\n== packed batched engine (batch %zu) ==\n"
        "accuracy %.1f %% (%zu prediction mismatches vs reference), "
        "%zu samples in %.2f ms -> %.0f samples/s\n",
        bcfg.batch_size,
        100.0 * static_cast<double>(batched_correct) /
            static_cast<double>(eval_count),
        batched_mismatch, stats.samples, ns_to_ms(stats.wall_ns),
        stats.samples_per_s());
  }

  // ---- modeled performance for this network ------------------------------
  const arch::CostModel model(arch::TechParams::paper_defaults());
  const auto spec = net.spec();
  Table perf({"design", "latency (us)", "energy (nJ)", "speedup vs baseline"});
  const auto base_cost = model.evaluate(arch::Design::BaselineEpcm, spec);
  for (const auto design :
       {arch::Design::BaselineEpcm, arch::Design::TacitEpcm,
        arch::Design::EinsteinBarrier, arch::Design::BaselineGpu}) {
    const auto c = model.evaluate(design, spec);
    perf.add_row({arch::to_string(design), Table::num(ns_to_us(c.latency_ns), 3),
                  design == arch::Design::BaselineGpu
                      ? "-"
                      : Table::num(pj_to_nj(c.energy_pj), 1),
                  Table::num(base_cost.latency_ns / c.latency_ns, 1)});
  }
  std::printf("\n== modeled per-inference cost (MLP-S) ==\n%s",
              perf.render().c_str());
  return 0;
}
