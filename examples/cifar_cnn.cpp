// Conv-network study on the CIFAR-10 stand-in: builds VGG-D (the paper's
// conv-heavy MlBench network), validates a binarized conv layer's im2col
// windows on the oPCM TacitMap executor (WDM batches of 16 windows), and
// reports the modeled per-design costs where VGG-D shows the paper's
// extreme speedups.
//
//   ./build/examples/cifar_cnn [samples=2]
#include <cstdio>

#include "arch/cost_model.hpp"
#include "bnn/dataset.hpp"
#include "bnn/layers.hpp"
#include "bnn/model_zoo.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "device/noise.hpp"
#include "eval/experiments.hpp"
#include "mapping/tacitmap.hpp"

int main(int argc, char** argv) {
  using namespace eb;
  const Config cfg = Config::from_args(argc, argv);
  const auto samples = static_cast<std::size_t>(cfg.get_int("samples", 2));
  Rng rng(9);
  const dev::NoNoise no_noise;

  // ---- functional forward of VGG-D on synthetic CIFAR -------------------
  std::puts("building VGG-D (binarized hidden layers, random weights)...");
  const bnn::Network vgg = bnn::build_vgg_d(rng);
  bnn::SyntheticCifar data(7);
  for (std::size_t i = 0; i < samples; ++i) {
    const bnn::Sample s = data.sample(i);
    const std::size_t pred = vgg.predict(s.image);
    std::printf("  sample %zu: label %zu, VGG-D (untrained) predicts %zu\n",
                i, s.label, pred);
  }

  // ---- validate one binarized conv layer on the oPCM executor -----------
  // conv6 (3x3x256 kernels over an 8x8 map) is representative of the
  // layers that dominate VGG-D's crossbar work.
  bnn::Conv2dGeom geom;
  geom.in_ch = 32;  // reduced channel count keeps the demo quick
  geom.out_ch = 16;
  geom.kernel = 3;
  geom.stride = 1;
  geom.pad = 1;
  geom.in_h = 8;
  geom.in_w = 8;
  const auto conv = bnn::BinaryConv2dLayer::random("demo_conv", geom, rng);
  bnn::Tensor act({geom.in_ch, geom.in_h, geom.in_w});
  for (std::size_t i = 0; i < act.size(); ++i) {
    act[i] = rng.bernoulli() ? 1.0 : -1.0;
  }
  const bnn::Tensor want = conv.forward(act);

  // Map the kernels with TacitMap on oPCM and push all 64 windows through
  // in WDM batches of 16 (paper Fig. 5-(b)).
  BitMatrix kernels(geom.out_ch, geom.kernel * geom.kernel * geom.in_ch);
  for (std::size_t oc = 0; oc < geom.out_ch; ++oc) {
    kernels.row(oc) = conv.kernels()[oc];
  }
  map::TacitOpticalConfig ocfg;
  const map::TacitMapOptical mapped(kernels, ocfg);

  // All windows through one execute_batch call: the executor tiles them
  // into ceil(B / wdm_capacity) WDM passes internally (the hand-rolled
  // chunking this example used to do itself).
  std::vector<std::pair<std::size_t, std::size_t>> positions;
  std::vector<BitVec> windows;
  for (std::size_t oh = 0; oh < geom.out_h(); ++oh) {
    for (std::size_t ow = 0; ow < geom.out_w(); ++ow) {
      windows.push_back(
          bnn::BinaryConv2dLayer::im2col_window(act, geom, oh, ow));
      positions.emplace_back(oh, ow);
    }
  }
  const auto counts = mapped.execute_batch(windows, no_noise, rng);
  std::size_t mismatches = 0;
  for (std::size_t k = 0; k < windows.size(); ++k) {
    const auto [oh, ow] = positions[k];
    for (std::size_t oc = 0; oc < geom.out_ch; ++oc) {
      const long long dot = 2 * static_cast<long long>(counts[k][oc]) -
                            static_cast<long long>(windows[k].size());
      if (static_cast<double>(dot) != want.at({oc, oh, ow})) {
        ++mismatches;
      }
    }
  }
  const std::size_t steps =
      (windows.size() + ocfg.wdm_capacity - 1) / ocfg.wdm_capacity;
  std::printf("\nconv validation: %zu im2col windows in %zu WDM passes of"
              " K<=%zu -> %zu output mismatches vs reference\n",
              windows.size(), steps, ocfg.wdm_capacity, mismatches);

  // ---- modeled cost of the full VGG-D ------------------------------------
  const arch::TechParams tech = arch::TechParams::paper_defaults();
  const arch::CostModel model(tech);
  const auto spec = bnn::vgg_d_spec();
  const auto base = model.evaluate(arch::Design::BaselineEpcm, spec);
  Table perf({"design", "latency (us)", "energy (uJ)", "speedup"});
  for (const auto design :
       {arch::Design::BaselineEpcm, arch::Design::TacitEpcm,
        arch::Design::EinsteinBarrier, arch::Design::BaselineGpu}) {
    const auto c = model.evaluate(design, spec);
    perf.add_row({arch::to_string(design),
                  Table::num(ns_to_us(c.latency_ns), 2),
                  design == arch::Design::BaselineGpu
                      ? "-"
                      : Table::num(pj_to_uj(c.energy_pj), 3),
                  Table::num(base.latency_ns / c.latency_ns, 1)});
  }
  std::printf("\n== modeled per-inference cost (VGG-D, CIFAR-10) ==\n%s",
              perf.render().c_str());
  std::puts("\nVGG-D's thousands of im2col windows are what EinsteinBarrier"
            "\nbatches over wavelengths -- this is the network where the"
            "\npaper reports its ~3113x extreme.");

  // Per-layer breakdown of where EinsteinBarrier spends its time.
  std::printf("\n== EinsteinBarrier per-layer breakdown ==\n%s",
              eval::layer_breakdown_table(model,
                                          arch::Design::EinsteinBarrier, spec)
                  .render()
                  .c_str());
  return 0;
}
