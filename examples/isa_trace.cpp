// ISA-level trace: compiles a trained BNN for EinsteinBarrier, prints the
// per-ECore assembly the compiler generated (including the WDM MMM
// instructions), runs one batch, and reports the executed statistics and
// energy breakdown.
//
//   ./build/examples/isa_trace
#include <cstdio>

#include "arch/machine.hpp"
#include "bnn/dataset.hpp"
#include "bnn/trainer.hpp"
#include "compiler/compiler.hpp"

int main() {
  using namespace eb;

  bnn::TrainerConfig tcfg;
  tcfg.dims = {784, 128, 96, 64, 10};  // two binarized hidden layers
  tcfg.epochs = 1;
  tcfg.train_samples = 300;
  bnn::MlpTrainer trainer(tcfg);
  bnn::SyntheticMnist data(42);
  trainer.train(data);
  const bnn::Network net = trainer.export_network("isa-demo");

  arch::MachineConfig mcfg;  // oPCM machine
  const comp::MlpCompiler compiler(mcfg);
  const comp::CompiledMlp compiled = compiler.compile(net, /*batch=*/2);

  std::puts("== compiled layer map ==");
  for (std::size_t l = 0; l < compiled.layers.size(); ++l) {
    const auto& info = compiled.layers[l];
    std::printf(
        "layer %zu: %zu -> %zu bits, %zu column tile(s) x %zu m-chunk(s),"
        " bits at [%zu] -> [%zu]\n",
        l, info.m, info.n, info.col_tiles, info.chunks, info.in_region,
        info.out_region);
  }

  std::puts("\n== per-ECore assembly ==");
  for (std::size_t c = 0; c < compiled.program.streams.size(); ++c) {
    const auto& stream = compiled.program.streams[c];
    if (stream.empty()) {
      continue;
    }
    std::printf("-- ecore %zu (%zu instructions) --\n%s", c, stream.size(),
                arch::disassemble(stream).c_str());
  }

  std::puts("== constant tables (folded BatchNorm thresholds) ==");
  for (std::size_t i = 0; i < compiled.program.tables.size(); ++i) {
    const auto& tab = compiled.program.tables[i];
    std::printf("thr%zu: %zu entries, first values", i, tab.size());
    for (std::size_t j = 0; j < std::min<std::size_t>(6, tab.size()); ++j) {
      std::printf(" %lld", tab[j]);
    }
    std::puts(" ...");
  }

  // Encode/decode round-trip demonstration on the first real instruction.
  for (const auto& stream : compiled.program.streams) {
    if (!stream.empty()) {
      const auto word = arch::encode(stream.front());
      std::printf("\nencoding check: '%s' <-> 0x%016llx\n",
                  arch::to_assembly(stream.front()).c_str(),
                  static_cast<unsigned long long>(word));
      break;
    }
  }

  arch::Machine machine(mcfg);
  const bnn::Sample a = data.sample(1000);
  const bnn::Sample b = data.sample(1001);
  const comp::MlpRun run =
      comp::run_mlp_on_machine(machine, compiled, net, {a.image, b.image});
  std::printf("\n== run (WDM batch of 2) ==\n");
  std::printf("predictions: %zu %zu (reference %zu %zu)\n",
              run.predictions[0], run.predictions[1], net.predict(a.image),
              net.predict(b.image));
  std::printf("%zu instructions, %zu VMM, %zu MMM, %.0f ns\n",
              run.stats.instructions, run.stats.vmm_ops, run.stats.mmm_ops,
              run.stats.latency_ns);
  std::printf("energy:\n%s", run.stats.energy.report().c_str());
  return 0;
}
